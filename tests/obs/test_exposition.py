"""Unit tests for Prometheus/JSON exposition and the scrape server."""

from __future__ import annotations

import json
import urllib.request

from repro.obs import (
    METRICS_SCHEMA,
    MetricsRegistry,
    MetricsServer,
    render_prometheus,
    snapshot_metrics,
    validate_metrics_json,
    write_metrics_json,
)


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("asketch_items_total").inc(100)
    registry.counter("shard_items_total", shard="0").inc(60)
    registry.counter("shard_items_total", shard="1").inc(40)
    registry.gauge("dlq_depth").set(2)
    histogram = registry.histogram("chunk_seconds", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(5.0)
    return registry


class TestRenderPrometheus:
    def test_type_lines_and_values(self):
        text = render_prometheus(_populated_registry())
        assert "# TYPE asketch_items_total counter" in text
        assert "asketch_items_total 100" in text
        assert "# TYPE dlq_depth gauge" in text
        assert 'shard_items_total{shard="0"} 60' in text

    def test_histogram_series(self):
        text = render_prometheus(_populated_registry())
        assert 'chunk_seconds_bucket{le="0.1"} 1' in text
        assert 'chunk_seconds_bucket{le="+Inf"} 2' in text
        assert "chunk_seconds_count 2" in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("errs", kind='say "hi"\n').inc()
        text = render_prometheus(registry)
        assert r'kind="say \"hi\"\n"' in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestSnapshot:
    def test_snapshot_is_schema_valid(self):
        snapshot = snapshot_metrics(
            _populated_registry(), derived={"filter_hit_rate": 0.9}
        )
        assert snapshot["schema"] == METRICS_SCHEMA
        assert validate_metrics_json(snapshot) == []
        assert snapshot["derived"]["filter_hit_rate"] == 0.9

    def test_snapshot_is_json_serialisable(self):
        snapshot = snapshot_metrics(_populated_registry())
        decoded = json.loads(json.dumps(snapshot))
        assert validate_metrics_json(decoded) == []

    def test_write_and_revalidate(self, tmp_path):
        path = tmp_path / "metrics.json"
        write_metrics_json(path, _populated_registry())
        document = json.loads(path.read_text())
        assert validate_metrics_json(document) == []

    def test_histogram_quantiles_present(self):
        snapshot = snapshot_metrics(_populated_registry())
        (histogram,) = snapshot["histograms"]
        assert histogram["count"] == 2
        assert histogram["p50"] >= 0.0
        assert histogram["p99"] >= histogram["p50"]
        assert histogram["buckets"][-1][0] == "+Inf"


class TestValidator:
    def test_rejects_non_dict(self):
        assert validate_metrics_json([]) != []

    def test_rejects_wrong_schema(self):
        snapshot = snapshot_metrics(MetricsRegistry())
        snapshot["schema"] = "other/v9"
        assert any("schema" in p for p in validate_metrics_json(snapshot))

    def test_rejects_missing_sections(self):
        snapshot = snapshot_metrics(MetricsRegistry())
        del snapshot["counters"]
        assert validate_metrics_json(snapshot) != []

    def test_rejects_non_monotonic_buckets(self):
        snapshot = snapshot_metrics(_populated_registry())
        snapshot["histograms"][0]["buckets"][0][1] = 999
        assert any("monotonic" in p.lower() or "bucket" in p.lower()
                   for p in validate_metrics_json(snapshot))


class TestMetricsServer:
    def test_serves_text_and_json(self):
        registry = _populated_registry()
        with MetricsServer(registry) as server:
            with urllib.request.urlopen(server.url, timeout=5) as response:
                text = response.read().decode()
            assert "asketch_items_total 100" in text
            json_url = server.url.replace("/metrics", "/metrics.json")
            with urllib.request.urlopen(json_url, timeout=5) as response:
                document = json.loads(response.read().decode())
            assert validate_metrics_json(document) == []

    def test_unknown_path_is_404(self):
        import urllib.error

        with MetricsServer(MetricsRegistry()) as server:
            bad = server.url.replace("/metrics", "/nope")
            try:
                urllib.request.urlopen(bad, timeout=5)
            except urllib.error.HTTPError as exc:
                assert exc.code == 404
            else:  # pragma: no cover - should not happen
                raise AssertionError("expected 404")
