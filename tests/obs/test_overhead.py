"""Acceptance: observability must be near-free and semantically inert.

The ISSUE contract: with a registry installed, a scalar ingest of 100K
items is at most 3% slower than with no registry, and the resulting
estimates are bit-identical.  The instrumentation meets this by
recording counter *deltas* once per ingest call (never per item), so
the hot per-item path is untouched.
"""

from __future__ import annotations

import time

from repro.core.asketch import ASketch
from repro.obs import install_registry, uninstall_registry
from repro.streams.zipf import zipf_stream

ITEMS = 100_000
REPS = 5


def _build() -> ASketch:
    return ASketch(total_bytes=32 * 1024, filter_items=32, seed=9)


def _one_ingest(keys, observed: bool) -> tuple[float, ASketch]:
    asketch = _build()
    if observed:
        install_registry()
    try:
        start = time.perf_counter()
        asketch.process_stream(keys)
        return time.perf_counter() - start, asketch
    finally:
        if observed:
            uninstall_registry()


def _measure_ratio(keys) -> tuple[float, ASketch, ASketch]:
    """Min-of-reps observed/bare ratio with interleaved reps.

    Alternating bare and observed runs decorrelates the comparison
    from slow machine-load drift; min-of-reps is the standard
    noise-robust wall-clock estimator.
    """
    bare_best = observed_best = float("inf")
    bare = observed = _build()
    for _ in range(REPS):
        seconds, bare = _one_ingest(keys, observed=False)
        bare_best = min(bare_best, seconds)
        seconds, observed = _one_ingest(keys, observed=True)
        observed_best = min(observed_best, seconds)
    return observed_best / bare_best, bare, observed


class TestOverheadBudget:
    def test_scalar_ingest_within_three_percent_and_bit_identical(self):
        keys = zipf_stream(ITEMS, 25_000, 1.5, seed=31).keys
        ratio, bare, observed = _measure_ratio(keys)
        assert observed.state().equals(bare.state())
        assert observed.query_batch(keys[:100]) == bare.query_batch(
            keys[:100]
        )
        if ratio > 1.03:  # one re-measure absorbs a noisy first pass
            ratio, bare, observed = _measure_ratio(keys)
            assert observed.state().equals(bare.state())
        assert ratio <= 1.03, f"observed/bare ingest ratio {ratio:.3f} > 1.03"
