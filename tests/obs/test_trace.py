"""Unit tests for the span/point trace hook."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    JsonlTraceWriter,
    RecordingTraceSink,
    current_tracer,
    install_tracer,
    trace_point,
    trace_span,
    uninstall_tracer,
)


class TestInstallation:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_points_and_spans_are_noops_without_a_sink(self):
        trace_point("ignored", key=1)
        with trace_span("ignored"):
            pass


class TestRecordingSink:
    def test_span_emits_enter_and_exit_with_duration(self):
        sink = RecordingTraceSink()
        install_tracer(sink)
        with trace_span("ingest", chunk_index=3):
            pass
        phases = [event.phase for event in sink.named("ingest")]
        assert phases == ["enter", "exit"]
        exit_event = sink.named("ingest")[-1]
        assert exit_event.duration_s is not None
        assert exit_event.duration_s >= 0.0
        assert exit_event.attrs["chunk_index"] == 3

    def test_span_exit_emitted_on_exception(self):
        sink = RecordingTraceSink()
        install_tracer(sink)
        with pytest.raises(RuntimeError):
            with trace_span("ingest"):
                raise RuntimeError("boom")
        assert [e.phase for e in sink.named("ingest")] == ["enter", "exit"]

    def test_point_event(self):
        sink = RecordingTraceSink()
        install_tracer(sink)
        trace_point("exchange", key=42)
        (event,) = sink.named("exchange")
        assert event.phase == "point"
        assert event.attrs["key"] == 42

    def test_uninstall_stops_recording(self):
        sink = RecordingTraceSink()
        install_tracer(sink)
        uninstall_tracer()
        trace_point("exchange")
        assert sink.events == []


class TestJsonlWriter:
    def test_writes_one_json_object_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceWriter(path) as writer:
            install_tracer(writer)
            with trace_span("checkpoint", generation=0):
                trace_point("exchange", key=7)
            uninstall_tracer()
        lines = [
            json.loads(line)
            for line in path.read_text().splitlines()
            if line
        ]
        assert [line["name"] for line in lines] == [
            "checkpoint",
            "exchange",
            "checkpoint",
        ]
        assert lines[0]["phase"] == "enter"
        assert lines[1]["attrs"]["key"] == 7
        assert lines[2]["phase"] == "exit"
        assert lines[2]["duration_s"] >= 0.0

    def test_event_to_dict_roundtrips_through_json(self):
        sink = RecordingTraceSink()
        install_tracer(sink)
        trace_point("exchange", key=1, estimate=9)
        payload = json.dumps(sink.events[0].to_dict())
        assert json.loads(payload)["name"] == "exchange"
