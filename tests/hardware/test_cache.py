"""Tests for the set-associative cache simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.cache import (
    SetAssociativeCache,
    simulate_sketch_hit_ratios,
    sketch_access_trace,
)
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream


class TestCacheMechanics:
    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(0)
        with pytest.raises(ConfigurationError):
            SetAssociativeCache(64, line_bytes=64, ways=8)  # 1 line, 8 ways

    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(4096)
        assert not cache.access(128)
        assert cache.access(128)
        assert cache.access(130)  # same line
        assert cache.stats.hits == 2
        assert cache.stats.accesses == 3

    def test_line_granularity(self):
        cache = SetAssociativeCache(4096, line_bytes=64)
        cache.access(0)
        assert cache.access(63)       # same line
        assert not cache.access(64)   # next line

    def test_lru_eviction_within_set(self):
        # 2-way, 2-set cache: lines 0, 4, 8 map to set 0 (line % 2).
        cache = SetAssociativeCache(256, line_bytes=64, ways=2)
        assert cache.n_sets == 2
        cache.access(0)       # line 0 -> set 0
        cache.access(128)     # line 2 -> set 0
        cache.access(256)     # line 4 -> set 0, evicts line 0 (LRU)
        assert not cache.access(0)    # miss: was evicted
        assert cache.access(256)      # still resident

    def test_working_set_within_capacity_hits(self):
        cache = SetAssociativeCache(8 * 1024)
        addresses = np.tile(np.arange(0, 4096, 64), 10)
        cache.access_many(addresses)
        # After the first cold pass, everything hits.
        assert cache.stats.hit_ratio > 0.85

    def test_working_set_beyond_capacity_thrashes(self):
        cache = SetAssociativeCache(4 * 1024)
        addresses = np.tile(np.arange(0, 1024 * 1024, 64), 3)
        cache.access_many(addresses)
        assert cache.stats.hit_ratio < 0.05

    def test_reset_stats(self):
        cache = SetAssociativeCache(4096)
        cache.access(0)
        cache.reset_stats()
        assert cache.stats.accesses == 0


class TestSketchTraces:
    @pytest.fixture(scope="class")
    def setting(self):
        stream = zipf_stream(20_000, 5_000, 1.0, seed=131)
        sketch = CountMinSketch(8, total_bytes=128 * 1024, seed=7)
        return sketch, stream

    def test_trace_shape_and_bounds(self, setting):
        sketch, stream = setting
        trace = sketch_access_trace(sketch, stream.keys[:1000])
        assert trace.shape[0] == 8 * 1000
        assert trace.min() >= 0
        assert trace.max() < sketch.size_bytes

    def test_trace_interleaves_rows_per_item(self, setting):
        sketch, stream = setting
        trace = sketch_access_trace(sketch, stream.keys[:10])
        # First 8 addresses belong to the first item: one per row region.
        first = trace[:8] // (sketch.row_width * 4)
        np.testing.assert_array_equal(first, np.arange(8))

    def test_paper_cache_hierarchy_split(self, setting):
        """The §7.1 premise: a 128KB sketch lives in L2 (high simulated
        L2 hit ratio) but not in L1 (poor L1 hit ratio)."""
        sketch, stream = setting
        ratios = simulate_sketch_hit_ratios(
            sketch,
            stream.keys[:4000],
            cache_sizes={"L1": 32 * 1024, "L2": 256 * 1024},
        )
        assert ratios["L2"].hit_ratio > 0.75
        assert ratios["L1"].hit_ratio < ratios["L2"].hit_ratio - 0.15

    def test_small_sketch_fits_l1(self):
        stream = zipf_stream(20_000, 5_000, 1.0, seed=132)
        small = CountMinSketch(8, total_bytes=8 * 1024, seed=8)
        ratios = simulate_sketch_hit_ratios(
            small, stream.keys[:4000], cache_sizes={"L1": 32 * 1024}
        )
        assert ratios["L1"].hit_ratio > 0.9
