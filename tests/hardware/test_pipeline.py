"""Tests for the two-core pipeline model (§6.2)."""

from __future__ import annotations

import pytest

from repro.hardware.costs import CostModel, OpCounters
from repro.hardware.pipeline import PipelineSimulator


def filter_heavy_ops(n: int) -> OpCounters:
    return OpCounters(
        items=n, filter_probes=n, filter_probe_blocks=2 * n, filter_hits=n
    )


def sketch_ops(misses: int) -> OpCounters:
    return OpCounters(hash_evals=8 * misses, sketch_cell_writes=8 * misses)


class TestPipeline:
    def test_zero_items(self):
        simulator = PipelineSimulator()
        result = simulator.run(
            OpCounters(), OpCounters(), 0, 0, 0, 128 * 1024
        )
        assert result.throughput_items_per_ms == 0.0

    def test_throughput_bounded_by_slowest_stage(self):
        simulator = PipelineSimulator()
        model = simulator.cost_model
        n, misses = 100_000, 20_000
        result = simulator.run(
            filter_heavy_ops(n), sketch_ops(misses), n, misses, 0,
            128 * 1024,
        )
        stage_bound = model.clock_hz / max(
            result.stage0_cycles_per_item, result.stage1_cycles_per_item
        ) / 1000.0
        assert result.throughput_items_per_ms == pytest.approx(stage_bound)

    def test_speedup_vs_sequential_in_midband(self):
        """When both stages carry real work, the pipeline roughly doubles
        throughput — the Figure 12 sweet spot."""
        simulator = PipelineSimulator()
        n, misses = 100_000, 20_000
        result = simulator.run(
            filter_heavy_ops(n), sketch_ops(misses), n, misses, 100,
            128 * 1024,
        )
        assert result.speedup > 1.2

    def test_no_gain_when_sketch_idles(self):
        """At extreme skew nothing overflows; the pipeline degenerates to
        the filter stage plus messaging overhead."""
        simulator = PipelineSimulator()
        n = 100_000
        result = simulator.run(
            filter_heavy_ops(n), OpCounters(), n, 0, 0, 128 * 1024
        )
        assert result.bottleneck == "filter"
        assert result.speedup < 1.5

    def test_messages_charged_on_both_stages(self):
        simulator = PipelineSimulator()
        n = 10_000
        with_messages = simulator.run(
            filter_heavy_ops(n), sketch_ops(n // 5), n, n // 5, 0,
            128 * 1024,
        )
        without_messages = simulator.run(
            filter_heavy_ops(n), sketch_ops(n // 5), n, 0, 0, 128 * 1024
        )
        assert (
            with_messages.stage0_cycles_per_item
            > without_messages.stage0_cycles_per_item
        )

    def test_custom_cost_model_respected(self):
        slow = CostModel(clock_hz=1.0e9)
        fast = CostModel(clock_hz=4.0e9)
        n, misses = 10_000, 2_000
        slow_result = PipelineSimulator(slow).run(
            filter_heavy_ops(n), sketch_ops(misses), n, misses, 0, 65536
        )
        fast_result = PipelineSimulator(fast).run(
            filter_heavy_ops(n), sketch_ops(misses), n, misses, 0, 65536
        )
        assert fast_result.throughput_items_per_ms == pytest.approx(
            4 * slow_result.throughput_items_per_ms
        )
