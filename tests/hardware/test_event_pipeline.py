"""Tests for the event-driven pipeline replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError
from repro.hardware.costs import CostModel
from repro.hardware.event_pipeline import EventDrivenPipeline
from repro.streams.zipf import zipf_stream


def make_pipeline(**overrides) -> EventDrivenPipeline:
    parameters = dict(
        hit_cycles=30.0, miss_cycles=40.0, sketch_cycles=350.0,
        queue_capacity=64,
    )
    parameters.update(overrides)
    return EventDrivenPipeline(**parameters)


class TestBasics:
    def test_empty_trace(self):
        result = make_pipeline().run(np.array([], dtype=bool))
        assert result.total_cycles == 0.0
        assert result.throughput_items_per_ms == 0.0

    def test_all_hits_is_filter_bound(self):
        result = make_pipeline().run(np.zeros(1000, dtype=bool))
        assert result.total_cycles == pytest.approx(1000 * 30.0)
        assert result.stall_cycles == 0.0
        assert result.max_queue_depth == 0

    def test_all_misses_is_sketch_bound(self):
        result = make_pipeline().run(np.ones(1000, dtype=bool))
        # C1 is the bottleneck: ~1000 * 350 cycles end to end.
        assert result.total_cycles == pytest.approx(
            40.0 + 1000 * 350.0, rel=0.05
        )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            make_pipeline(hit_cycles=0)
        with pytest.raises(ConfigurationError):
            make_pipeline(queue_capacity=0)


class TestBackpressure:
    def test_tiny_queue_stalls(self):
        trace = np.ones(500, dtype=bool)
        tight = make_pipeline(queue_capacity=1).run(trace)
        roomy = make_pipeline(queue_capacity=512).run(trace)
        assert tight.stall_cycles > 0
        assert roomy.throughput_items_per_ms >= (
            tight.throughput_items_per_ms
        )

    def test_bursty_trace_queues_deeper_than_uniform(self):
        burst = np.concatenate(
            [np.ones(50, dtype=bool), np.zeros(450, dtype=bool)] * 4
        )
        uniform = np.zeros(2000, dtype=bool)
        uniform[::10] = True
        pipeline = make_pipeline(queue_capacity=256)
        assert (
            pipeline.run(burst).max_queue_depth
            > pipeline.run(uniform).max_queue_depth
        )

    def test_queue_depth_bounded_by_capacity(self):
        result = make_pipeline(queue_capacity=8).run(
            np.ones(300, dtype=bool)
        )
        assert result.max_queue_depth <= 8


class TestAgainstAnalyticModel:
    def test_converges_to_analytic_with_roomy_queue(self):
        """On a real ASketch trace, the event-driven finish time matches
        the analytic slowest-stage bound within a few percent."""
        stream = zipf_stream(40_000, 10_000, 1.5, seed=121)
        asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=5)
        asketch.record_misses()
        asketch.process_stream(stream.keys)
        trace = asketch.miss_trace()
        assert trace.shape[0] == len(stream)
        assert int(trace.sum()) == asketch.miss_events

        hit, miss, sketch = 30.0, 40.0, 350.0
        result = make_pipeline(
            hit_cycles=hit, miss_cycles=miss, sketch_cycles=sketch,
            queue_capacity=100_000,
        ).run(trace)
        hits = len(stream) - int(trace.sum())
        stage0 = hits * hit + int(trace.sum()) * miss
        stage1 = int(trace.sum()) * sketch
        analytic_bound = max(stage0, stage1)
        assert result.total_cycles >= analytic_bound * 0.999
        assert result.total_cycles <= analytic_bound * 1.10

    def test_throughput_uses_cost_model_clock(self):
        model = CostModel(clock_hz=1.0e9)
        result = EventDrivenPipeline(
            model, hit_cycles=10.0, miss_cycles=10.0, sketch_cycles=10.0
        ).run(np.zeros(1000, dtype=bool))
        # 10 cycles per item at 1 GHz -> 100K items/ms.
        assert result.throughput_items_per_ms == pytest.approx(100_000)


class TestMissTraceRecording:
    def test_trace_matches_miss_events(self, skewed_stream):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8, seed=6)
        asketch.record_misses()
        asketch.process_stream(skewed_stream.keys[:5000])
        trace = asketch.miss_trace()
        assert trace.shape[0] == 5000
        assert int(trace.sum()) == asketch.miss_events

    def test_trace_requires_opt_in(self):
        asketch = ASketch(total_bytes=32 * 1024)
        with pytest.raises(ConfigurationError):
            asketch.miss_trace()

    def test_trace_can_be_disabled(self):
        asketch = ASketch(total_bytes=32 * 1024)
        asketch.record_misses()
        asketch.update(1)
        asketch.record_misses(False)
        with pytest.raises(ConfigurationError):
            asketch.miss_trace()
