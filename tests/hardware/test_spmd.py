"""Tests for the SPMD scaling model (§6.3)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters
from repro.hardware.spmd import SpmdModel


def kernel_ops(n: int) -> OpCounters:
    return OpCounters(items=n, hash_evals=8 * n, sketch_cell_writes=8 * n)


class TestSpmd:
    def test_one_core_is_single_kernel(self):
        model = SpmdModel()
        result = model.run(kernel_ops(10_000), 128 * 1024, 1)
        assert result.aggregate_items_per_ms == pytest.approx(
            result.single_core_items_per_ms
        )
        assert result.efficiency == pytest.approx(1.0)

    def test_near_linear_scaling(self):
        """Figure 13: linear scalability clearly visible."""
        model = SpmdModel()
        results = model.sweep(kernel_ops(10_000), 128 * 1024, [1, 2, 4, 8, 16, 32])
        for result in results:
            assert result.efficiency > 0.8
        assert results[-1].aggregate_items_per_ms > (
            25 * results[0].aggregate_items_per_ms
        )

    def test_contention_monotone(self):
        model = SpmdModel(contention_per_core=0.02)
        results = model.sweep(kernel_ops(1000), 65536, [1, 8, 32])
        efficiencies = [r.efficiency for r in results]
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_clock_is_sandy_bridge(self):
        assert SpmdModel().cost_model.clock_hz == pytest.approx(2.40e9)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SpmdModel(contention_per_core=-0.1)
        with pytest.raises(ConfigurationError):
            SpmdModel().run(kernel_ops(10), 1024, 0)

    def test_zero_contention_perfectly_linear(self):
        model = SpmdModel(contention_per_core=0.0)
        result = model.run(kernel_ops(1000), 65536, 16)
        assert result.efficiency == pytest.approx(1.0)
