"""Tests for the operation counters and the calibrated cost model."""

from __future__ import annotations

import pytest

from repro.hardware.costs import (
    CACHE_CAPACITY_BYTES,
    CacheLevel,
    CostModel,
    OpCounters,
    residency,
)


class TestOpCounters:
    def test_merge_adds_fields(self):
        a = OpCounters(items=5, hash_evals=10)
        b = OpCounters(items=2, exchanges=3)
        a.merge(b)
        assert a.items == 7
        assert a.hash_evals == 10
        assert a.exchanges == 3

    def test_snapshot_is_independent(self):
        ops = OpCounters(items=1)
        snap = ops.snapshot()
        ops.items = 99
        assert snap.items == 1

    def test_diff(self):
        ops = OpCounters(items=10, hash_evals=80)
        earlier = OpCounters(items=4, hash_evals=32)
        delta = ops.diff(earlier)
        assert delta.items == 6
        assert delta.hash_evals == 48

    def test_reset(self):
        ops = OpCounters(items=3, messages=2)
        ops.reset()
        assert ops.items == 0
        assert ops.messages == 0


class TestResidency:
    def test_levels(self):
        assert residency(256) is CacheLevel.REGISTER
        assert residency(16 * 1024) is CacheLevel.L1
        assert residency(128 * 1024) is CacheLevel.L2
        assert residency(4 * 1024 * 1024) is CacheLevel.L3
        assert residency(64 * 1024 * 1024) is CacheLevel.DRAM

    def test_boundaries_inclusive(self):
        assert residency(CACHE_CAPACITY_BYTES[CacheLevel.L1]) is CacheLevel.L1
        assert residency(CACHE_CAPACITY_BYTES[CacheLevel.L2]) is CacheLevel.L2


class TestCostModel:
    def test_count_min_calibration(self):
        """The paper's Count-Min baseline: ~6 500 items/ms for a 128KB,
        w=8 sketch on the 2.27 GHz machine (Table 1: 6 481)."""
        model = CostModel()
        n = 100_000
        ops = OpCounters(
            items=n, hash_evals=8 * n, sketch_cell_writes=8 * n
        )
        throughput = model.throughput_items_per_ms(ops, 128 * 1024)
        assert throughput == pytest.approx(6481, rel=0.1)

    def test_smaller_sketch_is_faster(self):
        model = CostModel()
        ops = OpCounters(items=100, hash_evals=800, sketch_cell_writes=800)
        small = model.throughput_items_per_ms(ops, 16 * 1024)
        large = model.throughput_items_per_ms(ops, 8 * 1024 * 1024)
        assert small > large

    def test_zero_items_zero_throughput(self):
        model = CostModel()
        assert model.throughput_items_per_ms(OpCounters(), 1024) == 0.0

    def test_cycles_additive(self):
        model = CostModel()
        a = OpCounters(items=10)
        b = OpCounters(hash_evals=10)
        merged = a.snapshot()
        merged.merge(b)
        assert model.cycles(merged, 1024) == pytest.approx(
            model.cycles(a, 1024) + model.cycles(b, 1024)
        )

    def test_filter_hit_path_cheaper_than_sketch_path(self):
        """The core §4 premise: t_f << t_s."""
        model = CostModel()
        filter_hit = OpCounters(items=1, filter_probes=1,
                                filter_probe_blocks=2, filter_hits=1)
        sketch_update = OpCounters(items=1, hash_evals=8,
                                   sketch_cell_writes=8)
        assert model.cycles(filter_hit, 512) < (
            model.cycles(sketch_update, 128 * 1024) / 5
        )
