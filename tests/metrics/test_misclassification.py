"""Tests for the misclassification detector (Table 3 / Figure 6)."""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.counters.exact import ExactCounter
from repro.errors import ConfigurationError
from repro.metrics.misclassification import find_misclassified
from repro.sketches.count_min import CountMinSketch


class FixedEstimator:
    """Test double returning preset estimates."""

    def __init__(self, estimates: dict[int, int]) -> None:
        self._estimates = estimates

    def estimate_batch(self, keys) -> list[int]:
        return [self._estimates.get(int(k), 0) for k in keys]


def build_exact(counts: dict[int, int]) -> ExactCounter:
    exact = ExactCounter()
    for key, count in counts.items():
        exact.update(key, count)
    return exact


class TestDetection:
    def test_detects_inflated_light_item(self):
        counts = {k: 1000 - k for k in range(50)}  # heavy ranks 0..49
        counts[999] = 2  # light item
        exact = build_exact(counts)
        estimator = FixedEstimator({**counts, 999: 5000})
        found = find_misclassified(estimator, exact, heavy_k=10)
        assert [m.key for m in found] == [999]
        assert found[0].relative_error > 1000

    def test_accurate_estimator_clean(self):
        counts = {k: 1000 - k for k in range(50)}
        counts[999] = 2
        exact = build_exact(counts)
        estimator = FixedEstimator(counts)
        assert find_misclassified(estimator, exact, heavy_k=10) == []

    def test_heavy_item_overestimate_not_misclassification(self):
        """Only *light* items crossing the heavy threshold count."""
        counts = {k: 1000 - k for k in range(50)}
        exact = build_exact(counts)
        estimates = dict(counts)
        estimates[25] = 10_000  # a genuinely mid-heavy item inflated
        estimator = FixedEstimator(estimates)
        assert find_misclassified(estimator, exact, heavy_k=10) == []

    def test_parameters_validated(self):
        exact = build_exact({1: 5})
        estimator = FixedEstimator({1: 5})
        with pytest.raises(ConfigurationError):
            find_misclassified(estimator, exact, heavy_k=0)
        with pytest.raises(ConfigurationError):
            find_misclassified(estimator, exact, tail_fraction=2.0)
        with pytest.raises(ConfigurationError):
            find_misclassified(estimator, exact, heavy_k=5)  # < 5 items


class TestOnRealSynopses:
    def test_small_cms_misclassifies_asketch_does_not(self, skewed_stream):
        """The paper's Table 3 contrast on a scaled stream."""
        budget = 4 * 1024  # deliberately tiny to force collisions
        count_min = CountMinSketch(8, total_bytes=budget, seed=1)
        count_min.update_batch(skewed_stream.keys)
        cms_bad = find_misclassified(count_min, skewed_stream.exact)
        asketch = ASketch(total_bytes=budget, filter_items=32, seed=1)
        asketch.process_stream(skewed_stream.keys)
        asketch_bad = find_misclassified(asketch, skewed_stream.exact)
        assert len(asketch_bad) <= len(cms_bad)
        assert len(asketch_bad) == 0
