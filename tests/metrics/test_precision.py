"""Tests for precision-at-k."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics.precision import precision_at_k


class TestPrecision:
    def test_perfect(self):
        assert precision_at_k([1, 2, 3], [3, 2, 1]) == 1.0

    def test_partial(self):
        assert precision_at_k([1, 2, 9, 8], [1, 2, 3, 4]) == 0.5

    def test_accepts_pairs(self):
        reported = [(1, 100), (2, 50)]
        truth = [(1, 100), (9, 60)]
        assert precision_at_k(reported, truth) == 0.5

    def test_mixed_forms(self):
        assert precision_at_k([(1, 10), (2, 5)], [1, 2]) == 1.0

    def test_explicit_k_truncates(self):
        assert precision_at_k([1, 9, 9, 9], [1], k=1) == 1.0

    def test_empty_reported(self):
        assert precision_at_k([], [1, 2]) == 0.0

    def test_invalid_k(self):
        with pytest.raises(ConfigurationError):
            precision_at_k([1], [1], k=0)
