"""Tests for the §7.1 error metrics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.metrics.error import (
    average_relative_error,
    observed_error,
    observed_error_percent,
)


class TestObservedError:
    def test_perfect_estimates(self):
        assert observed_error([5, 10], [5, 10]) == 0.0

    def test_definition(self):
        # sum|est-true| / sum true = (1 + 2) / (10 + 20)
        assert observed_error([11, 22], [10, 20]) == pytest.approx(0.1)

    def test_percent_scaling(self):
        assert observed_error_percent([11, 22], [10, 20]) == pytest.approx(10)

    def test_absolute_value_used(self):
        assert observed_error([9], [10]) == pytest.approx(0.1)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            observed_error([1], [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            observed_error([], [])

    def test_zero_truth_total_rejected(self):
        with pytest.raises(ConfigurationError):
            observed_error([5], [0])


class TestAverageRelativeError:
    def test_definition(self):
        # mean of (1/10, 5/20)
        assert average_relative_error([11, 25], [10, 20]) == (
            pytest.approx((0.1 + 0.25) / 2)
        )

    def test_biased_toward_low_frequency(self):
        """The paper's remark: the same absolute error weighs more on a
        low-count item."""
        heavy = average_relative_error([1010], [1000])
        light = average_relative_error([11], [1])
        assert light > heavy

    def test_zero_truth_queries_excluded(self):
        value = average_relative_error([5, 11], [0, 10])
        assert value == pytest.approx(0.1)

    def test_all_zero_truth_rejected(self):
        with pytest.raises(ConfigurationError):
            average_relative_error([5], [0])
