"""Tests for the query-workload samplers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.queries.workload import (
    frequency_weighted_queries,
    uniform_domain_queries,
)
from repro.streams.zipf import zipf_stream


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(50_000, 5_000, 1.5, seed=9)


class TestFrequencyWeighted:
    def test_queries_come_from_stream(self, stream):
        queries = frequency_weighted_queries(stream, 5000, seed=1)
        present = set(stream.keys.tolist())
        assert all(int(q) in present for q in queries)

    def test_heavy_items_queried_more(self, stream):
        queries = frequency_weighted_queries(stream, 20_000, seed=2)
        top_key = stream.true_top_k(1)[0][0]
        top_share = float((queries == top_key).mean())
        true_share = stream.exact.count_of(top_key) / len(stream)
        assert top_share == pytest.approx(true_share, rel=0.2)

    def test_deterministic(self, stream):
        first = frequency_weighted_queries(stream, 100, seed=3)
        second = frequency_weighted_queries(stream, 100, seed=3)
        np.testing.assert_array_equal(first, second)

    def test_zero_queries_rejected(self, stream):
        with pytest.raises(ConfigurationError):
            frequency_weighted_queries(stream, 0)


class TestUniformDomain:
    def test_covers_tail(self, stream):
        """Uniform-domain sampling must not be frequency biased."""
        queries = uniform_domain_queries(stream, 20_000, seed=4)
        top_key = stream.true_top_k(1)[0][0]
        top_share = float((queries == top_key).mean())
        assert top_share < 0.01  # ~1/distinct, far below its mass share

    def test_all_queries_are_real_keys(self, stream):
        queries = uniform_domain_queries(stream, 1000, seed=5)
        for query in queries.tolist():
            assert stream.exact.count_of(int(query)) > 0
