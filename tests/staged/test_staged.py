"""The staged-synopsis composition layer: stages, policies, resizing."""

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.core.filters import make_filter
from repro.core.staged import ClassicExchange, ExchangePolicy, StagedSynopsis
from repro.errors import ConfigurationError
from repro.obs.trace import RecordingTraceSink, install_tracer, uninstall_tracer
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(20_000, 4_000, 1.3, seed=23)


def _true_counts():
    keys, counts = np.unique(STREAM.keys, return_counts=True)
    return dict(zip(keys.tolist(), counts.tolist()))


class TestComposition:
    def test_direct_composition_matches_asketch(self):
        """Hand-assembled stages behave exactly like the ASketch facade."""
        staged = StagedSynopsis(
            make_filter("relaxed-heap", 16),
            CountMinSketch(num_hashes=8, total_bytes=8 * 1024, seed=3),
            ClassicExchange(1),
        )
        asketch = ASketch(
            sketch=CountMinSketch(num_hashes=8, total_bytes=8 * 1024, seed=3),
            filter_items=16,
        )
        staged.process_stream(STREAM.keys)
        asketch.process_stream(STREAM.keys)
        probes = STREAM.keys[:500]
        assert staged.query_batch(probes) == asketch.query_batch(probes)
        assert staged.exchange_count == asketch.exchange_count
        assert staged.combined_ops() == asketch.combined_ops()

    def test_filter_kind_inferred_from_front_stage(self):
        staged = StagedSynopsis(
            make_filter("vector", 8),
            CountMinSketch(num_hashes=4, total_bytes=4 * 1024),
        )
        assert staged.filter_kind == "vector"

    def test_default_policy_is_one_exchange(self):
        staged = StagedSynopsis(
            make_filter("relaxed-heap", 8),
            CountMinSketch(num_hashes=4, total_bytes=4 * 1024),
        )
        assert isinstance(staged.exchange_policy, ClassicExchange)
        assert staged.max_exchanges_per_update == 1

    def test_policy_knob_visible_through_property(self):
        staged = StagedSynopsis(
            make_filter("relaxed-heap", 8),
            CountMinSketch(num_hashes=4, total_bytes=4 * 1024),
            ClassicExchange(3),
        )
        assert staged.max_exchanges_per_update == 3
        staged.max_exchanges_per_update = 2
        assert staged.exchange_policy.max_exchanges_per_update == 2

    def test_classic_exchange_validates_budget(self):
        with pytest.raises(ConfigurationError):
            ClassicExchange(0)

    def test_asketch_is_a_staged_synopsis(self):
        assert issubclass(ASketch, StagedSynopsis)

    def test_custom_policy_can_disable_exchanges(self):
        class NeverExchange(ExchangePolicy):
            def run_exchanges(self, staged, key, current_estimate):
                return current_estimate

            def batch_candidates(self, staged, estimates, threshold):
                staged.filter.charge_min_queries(estimates.shape[0])
                return np.empty(0, dtype=np.int64)

        staged = StagedSynopsis(
            make_filter("relaxed-heap", 8),
            CountMinSketch(num_hashes=4, total_bytes=4 * 1024),
            NeverExchange(),
        )
        staged.process_stream(STREAM.keys)
        assert staged.exchange_count == 0
        # Still one-sided: filterless heavy keys fall through to CM.
        true = _true_counts()
        for key in list(true)[:200]:
            assert staged.query(key) >= true[key]


class TestResizeFilter:
    def _warm(self, items=32):
        staged = ASketch(
            total_bytes=16 * 1024, filter_items=items, seed=5
        )
        staged.process_stream(STREAM.keys)
        return staged

    def test_grow_keeps_entries_and_adds_slots(self):
        staged = self._warm(16)
        before = dict(staged.top_k())
        spilled = staged.resize_filter(64)
        assert spilled == 0
        assert staged.filter.capacity == 64
        assert dict(staged.top_k(16)) == before

    def test_shrink_spills_and_stays_one_sided(self):
        staged = self._warm(64)
        mass_before = staged.total_mass
        spilled = staged.resize_filter(8)
        assert spilled > 0
        assert staged.filter.capacity == 8
        assert staged.total_mass == mass_before
        true = _true_counts()
        for key, count in list(true.items())[:300]:
            assert staged.query(key) >= count

    def test_shrink_keeps_largest_entries(self):
        staged = self._warm(64)
        top8 = [key for key, _ in staged.top_k(8)]
        staged.resize_filter(8)
        kept = {key for key, _ in staged.top_k(8)}
        assert kept == set(top8)

    def test_same_size_is_a_noop(self):
        staged = self._warm(16)
        digest_before = staged.state()
        assert staged.resize_filter(16) == 0
        assert staged.state().equals(digest_before)

    def test_ops_record_survives_resize(self):
        staged = self._warm(16)
        probes_before = staged.combined_ops().filter_probes
        staged.resize_filter(32)
        assert staged.combined_ops().filter_probes >= probes_before
        staged.process_stream(STREAM.keys[:1000])
        assert staged.combined_ops().filter_probes > probes_before

    def test_resize_emits_trace_point(self):
        sink = RecordingTraceSink()
        install_tracer(sink)
        try:
            staged = self._warm(16)
            staged.resize_filter(32)
        finally:
            uninstall_tracer()
        resizes = [e for e in sink.events if e.name == "filter_resize"]
        assert len(resizes) == 1
        assert resizes[0].attrs["old_items"] == 16
        assert resizes[0].attrs["new_items"] == 32

    def test_invalid_size_rejected(self):
        staged = self._warm(16)
        with pytest.raises(ConfigurationError):
            staged.resize_filter(0)

    def test_resized_synopsis_still_checkpoints(self):
        staged = self._warm(16)
        staged.resize_filter(24)
        restored = ASketch.from_state(staged.state())
        assert restored.state().equals(staged.state())
        probes = STREAM.keys[:200]
        assert restored.query_batch(probes) == staged.query_batch(probes)
