"""Regenerate ``golden_asketch.json`` from the current ``ASketch``.

Run from the repo root::

    PYTHONPATH=src python tests/staged/generate_golden.py

The committed golden file was produced at commit ``0b71a63`` — the last
commit before the staged-synopsis refactor — so the equivalence suite
pins the refactored ``ASketch`` to the exact pre-refactor behaviour.
Only regenerate it for an *intentional* behaviour change, and say so in
the commit message.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "src"))

from _harness import (  # noqa: E402
    GOLDEN_PATH,
    FILTER_KINDS,
    PATHS,
    SKETCH_BACKENDS,
    kernel_backends,
    run_scenario,
    scenario_id,
)


def main() -> int:
    scenarios = {}
    for kind in FILTER_KINDS:
        for backend in SKETCH_BACKENDS:
            for path in PATHS:
                for kernel in kernel_backends():
                    sid = scenario_id(kind, backend, path, kernel)
                    scenarios[sid] = run_scenario(kind, backend, path, kernel)
                    print(sid, scenarios[sid]["state_digest"][:12])
    document = {
        "schema": "repro-staged-golden/v1",
        "kernel_backends": kernel_backends(),
        "scenarios": scenarios,
    }
    GOLDEN_PATH.write_text(
        json.dumps(document, indent=1, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"{len(scenarios)} scenarios written to {GOLDEN_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
