"""Shared scenario harness for the staged-refactor equivalence suite.

The harness runs a fixed Zipf workload through an :class:`~repro.ASketch`
under every (filter kind x sketch backend x ingest path x kernel backend)
combination and reduces the result to a JSON-serialisable record:
probe-key estimates, exchange/mass/miss tallies, the full
:class:`~repro.OpCounters` field map, and a sha256 digest of the
canonical ``state()`` encoding.

``generate_golden.py`` ran this harness against the *pre-refactor*
``ASketch`` (commit ``0b71a63``) to produce ``golden_asketch.json``;
``test_equivalence.py`` replays the identical scenarios against the
current implementation and requires every record to match bit-for-bit.
Because both sides share this module, any drift is in the sketch code,
not the measurement.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import numpy as np

from repro.core.asketch import ASketch
from repro.kernels import available_backends, use_backend
from repro.streams.zipf import zipf_stream

GOLDEN_PATH = Path(__file__).with_name("golden_asketch.json")

FILTER_KINDS = ("vector", "strict-heap", "relaxed-heap", "stream-summary")
SKETCH_BACKENDS = ("count-min", "fcm", "count-sketch")
PATHS = ("scalar", "batched")

STREAM_ITEMS = 30_000
STREAM_DOMAIN = 6_000
STREAM_SKEW = 1.3
STREAM_SEED = 17
TOTAL_BYTES = 16 * 1024
FILTER_ITEMS = 16
SKETCH_SEED = 9
CHUNK_SIZE = 2_048


def kernel_backends() -> list[str]:
    """Kernel backends to cover: every one available in this environment."""
    return available_backends()


def scenario_ids() -> list[str]:
    """Every scenario id, in deterministic order."""
    return [
        scenario_id(kind, backend, path, kernel)
        for kind in FILTER_KINDS
        for backend in SKETCH_BACKENDS
        for path in PATHS
        for kernel in kernel_backends()
    ]


def scenario_id(
    filter_kind: str, sketch_backend: str, path: str, kernel: str
) -> str:
    return f"{filter_kind}|{sketch_backend}|{path}|{kernel}"


def _workload() -> tuple[np.ndarray, np.ndarray]:
    """The shared stream plus probe keys (hot, mid, and absent ids)."""
    stream = zipf_stream(
        STREAM_ITEMS, STREAM_DOMAIN, STREAM_SKEW, seed=STREAM_SEED
    )
    keys = stream.keys
    probes = np.concatenate(
        [
            keys[:150],
            np.arange(STREAM_DOMAIN, STREAM_DOMAIN + 50, dtype=np.int64),
        ]
    ).astype(np.int64)
    return keys, probes


def state_digest(state) -> str:
    """A canonical sha256 over a SynopsisState's full contents."""
    digest = hashlib.sha256()
    digest.update(state.kind.encode())
    digest.update(
        json.dumps(state.params, sort_keys=True, default=str).encode()
    )
    digest.update(
        json.dumps(state.extra, sort_keys=True, default=str).encode()
    )
    for name in sorted(state.arrays):
        array = np.ascontiguousarray(state.arrays[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def run_scenario(
    filter_kind: str, sketch_backend: str, path: str, kernel: str
) -> dict:
    """Ingest the shared workload under one configuration and summarise."""
    keys, probes = _workload()
    with use_backend(kernel):
        asketch = ASketch(
            total_bytes=TOTAL_BYTES,
            filter_items=FILTER_ITEMS,
            filter_kind=filter_kind,
            sketch_backend=sketch_backend,
            seed=SKETCH_SEED,
        )
        if path == "scalar":
            asketch.process_stream(keys)
        else:
            for offset in range(0, keys.shape[0], CHUNK_SIZE):
                asketch.process_batch(keys[offset : offset + CHUNK_SIZE])
        ops = asketch.combined_ops()
        record = {
            "ops": {
                field.name: int(getattr(ops, field.name))
                for field in dataclasses.fields(ops)
            },
            "exchange_count": int(asketch.exchange_count),
            "total_mass": int(asketch.total_mass),
            "overflow_mass": int(asketch.overflow_mass),
            "miss_events": int(asketch.miss_events),
            "state_digest": state_digest(asketch.state()),
            "estimates": [int(value) for value in asketch.query_batch(probes)],
            "top_k": [
                [int(key), int(count)] for key, count in asketch.top_k()
            ],
        }
    return record


def load_golden() -> dict:
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
