"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            errors.ConfigurationError,
            errors.CapacityError,
            errors.NegativeCountError,
            errors.UnknownExperimentError,
            errors.StreamFormatError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, errors.ReproError)

    def test_repro_error_is_exception(self):
        assert issubclass(errors.ReproError, Exception)

    def test_single_catch_covers_library_failures(self):
        """The documented catch-all pattern works."""
        from repro import ASketch

        with pytest.raises(errors.ReproError):
            ASketch()  # missing sizing arguments

    def test_library_never_raises_bare_exceptions_for_config(self):
        """Configuration mistakes raise ConfigurationError, not ValueError."""
        from repro import CountMinSketch

        with pytest.raises(errors.ConfigurationError):
            CountMinSketch(num_hashes=0, row_width=10)
