"""Regression pins: the modeled numbers stay near the paper's Table 1.

These tests freeze the reproduction's headline calibration so that
future changes to the cost model or the data structures cannot silently
drift away from the paper.  Bands are deliberately loose (the paper's
own numbers carry run-to-run noise) but tight enough to catch a broken
constant or an uncharged operation.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, run_experiment

#: Paper Table 1 (Zipf 1.5, 128KB, filter 32).
PAPER_UPDATES_PER_MS = {
    "Count-Min": 6481,
    "FCM": 6165,
    "Holistic UDAFs": 17508,
    "ASketch": 26739,
}
PAPER_QUERIES_PER_MS = {
    "Count-Min": 6892,
    "FCM": 7551,
    "Holistic UDAFs": 6319,
    "ASketch": 30795,
}


@pytest.fixture(scope="module")
def table1_rows():
    config = ExperimentConfig(scale=0.1, seed=0)
    result = run_experiment("table1", config)
    return {row["method"]: row for row in result.rows}


class TestThroughputCalibration:
    def test_count_min_anchor_within_5_percent(self, table1_rows):
        """The calibration anchor itself."""
        modeled = table1_rows["Count-Min"]["updates/ms (modeled)"]
        assert modeled == pytest.approx(
            PAPER_UPDATES_PER_MS["Count-Min"], rel=0.05
        )

    @pytest.mark.parametrize(
        "method,band",
        [("ASketch", (3.0, 6.5)), ("Holistic UDAFs", (2.0, 3.6)),
         ("FCM", (0.85, 1.25))],
    )
    def test_update_ratio_vs_count_min(self, table1_rows, method, band):
        """Relative update speed vs Count-Min stays in the paper's band
        (paper ratios: ASketch 4.1x, H-UDAF 2.7x, FCM 0.95x)."""
        ratio = (
            table1_rows[method]["updates/ms (modeled)"]
            / table1_rows["Count-Min"]["updates/ms (modeled)"]
        )
        low, high = band
        assert low <= ratio <= high, ratio

    def test_asketch_query_ratio(self, table1_rows):
        """Paper: ASketch answers queries ~4.5x faster than Count-Min."""
        ratio = (
            table1_rows["ASketch"]["queries/ms (modeled)"]
            / table1_rows["Count-Min"]["queries/ms (modeled)"]
        )
        assert 3.0 <= ratio <= 7.0

    def test_hudaf_queries_sketch_bound(self, table1_rows):
        """Paper: H-UDAF queries no faster than Count-Min's (6319 vs
        6892) — the aggregation table cannot answer queries."""
        assert (
            table1_rows["Holistic UDAFs"]["queries/ms (modeled)"]
            <= table1_rows["Count-Min"]["queries/ms (modeled)"] * 1.05
        )


class TestAccuracyCalibration:
    def test_error_ordering_matches_paper(self, table1_rows):
        """Paper ordering: ASketch < FCM < Count-Min ~ H-UDAF."""
        errors = {
            method: row["observed error (%)"]
            for method, row in table1_rows.items()
        }
        assert errors["ASketch"] <= errors["FCM"]
        assert errors["FCM"] <= errors["Count-Min"]

    def test_asketch_improvement_factor(self, table1_rows):
        """Paper: 6x better than Count-Min in Table 1; allow 2x-100x at
        reduced scale."""
        cms = table1_rows["Count-Min"]["observed error (%)"]
        asketch = table1_rows["ASketch"]["observed error (%)"]
        if asketch > 0:
            assert 2.0 <= cms / asketch <= 200.0
