"""Smoke checks over the example scripts.

Importing each example compiles it and executes its module level (cheap:
all work happens under ``main()``); the quickstart is additionally run
end to end since it is the first thing a new user executes.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(path.stem for path in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(
        f"example_{name}", EXAMPLES_DIR / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    return module


class TestExamples:
    def test_expected_example_set(self):
        assert ALL_EXAMPLES == [
            "checkpoint_and_merge",
            "clickstream_topk",
            "live_dashboard",
            "network_heavy_hitters",
            "nlp_cooccurrence",
            "parallel_pipeline",
            "quickstart",
            "range_analytics",
            "sliding_window_monitor",
        ]

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_importable_with_main(self, name):
        module = load_example(name)
        assert callable(module.main)

    def test_quickstart_runs_end_to_end(self, capsys):
        module = load_example("quickstart")
        module.main()
        out = capsys.readouterr().out
        assert "top-5 true heavy hitters" in out
        assert "filter selectivity" in out
