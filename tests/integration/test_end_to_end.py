"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.metrics.error import observed_error_percent
from repro.queries.workload import frequency_weighted_queries
from repro.sketches.count_min import CountMinSketch
from repro.streams.ip_trace import ip_trace_stream
from repro.streams.kosarak import kosarak_stream
from repro.streams.zipf import zipf_stream


class TestHeadlineClaims:
    """The paper's abstract-level claims on a scaled workload."""

    @pytest.fixture(scope="class")
    def setting(self):
        stream = zipf_stream(150_000, 37_500, 1.5, seed=21)
        queries = frequency_weighted_queries(stream, 10_000, seed=22)
        truths = [stream.exact.count_of(int(k)) for k in queries]
        return stream, queries, truths

    def test_asketch_more_accurate_than_count_min(self, setting):
        stream, queries, truths = setting
        budget = 128 * 1024
        count_min = CountMinSketch(8, total_bytes=budget, seed=1)
        count_min.update_batch(stream.keys)
        asketch = ASketch(total_bytes=budget, filter_items=32, seed=1)
        asketch.process_stream(stream.keys)
        cms_error = observed_error_percent(
            count_min.estimate_batch(queries), truths
        )
        asketch_error = observed_error_percent(
            asketch.query_batch(queries), truths
        )
        assert asketch_error < cms_error

    def test_heavy_hitter_estimates_exact(self, setting):
        """Filter residents are counted exactly once warm (the paper's
        IP-trace anecdote: ASketch reports the max item exactly)."""
        stream, _, _ = setting
        asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=1)
        asketch.process_stream(stream.keys)
        matches = 0
        for key, true in stream.true_top_k(5):
            if asketch.query(key) == true:
                matches += 1
        assert matches >= 4

    def test_same_space_budget(self, setting):
        budget = 128 * 1024
        asketch = ASketch(total_bytes=budget, filter_items=32)
        count_min = CountMinSketch(8, total_bytes=budget)
        assert asketch.size_bytes <= count_min.size_bytes
        assert asketch.size_bytes >= count_min.size_bytes - 8 * 4


class TestBackendGenerality:
    """Figure 8's claim: the filter helps any underlying sketch."""

    @pytest.mark.parametrize("backend", ["count-min", "fcm"])
    def test_filter_reduces_error(self, backend, skewed_stream):
        from repro.sketches.fcm import FrequencyAwareCountMin

        budget = 32 * 1024
        if backend == "count-min":
            bare = CountMinSketch(8, total_bytes=budget, seed=5)
        else:
            bare = FrequencyAwareCountMin(
                8, total_bytes=budget, use_mg_counter=False, seed=5
            )
        for key in skewed_stream.keys.tolist():
            bare.update(key)
        augmented = ASketch(
            total_bytes=budget, filter_items=32,
            sketch_backend=backend, seed=5,
        )
        augmented.process_stream(skewed_stream.keys)
        queries = frequency_weighted_queries(skewed_stream, 5000, seed=6)
        truths = [skewed_stream.exact.count_of(int(k)) for k in queries]
        bare_error = observed_error_percent(
            bare.estimate_batch(queries), truths
        )
        augmented_error = observed_error_percent(
            augmented.query_batch(queries), truths
        )
        assert augmented_error <= bare_error


class TestRealDataSurrogates:
    def test_ip_trace_flow(self):
        stream = ip_trace_stream(stream_size=80_000, n_distinct=2_500, seed=1)
        asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=2)
        asketch.process_stream(stream.keys)
        top = asketch.top_k(10)
        truth = {key for key, _ in stream.true_top_k(10)}
        assert len({key for key, _ in top} & truth) >= 7

    def test_kosarak_flow(self):
        stream = kosarak_stream(stream_size=80_000, seed=3)
        asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=4)
        asketch.process_stream(stream.keys)
        for key, true in stream.true_top_k(3):
            estimate = asketch.query(key)
            assert estimate >= true
            assert estimate <= true * 1.05 + 10


class TestChunkedIngestion:
    def test_chunked_equals_whole(self, skewed_stream):
        whole = ASketch(total_bytes=64 * 1024, filter_items=16, seed=7)
        whole.process_stream(skewed_stream.keys)
        chunked = ASketch(total_bytes=64 * 1024, filter_items=16, seed=7)
        for chunk in skewed_stream.chunks(4096):
            chunked.process_stream(chunk)
        probe = skewed_stream.keys[:200]
        assert whole.query_batch(probe) == chunked.query_batch(probe)
        assert whole.exchange_count == chunked.exchange_count


class TestScaleStability:
    def test_error_ratio_stable_across_scales(self):
        """The ASketch/CMS error ratio ordering survives rescaling —
        the justification for DESIGN.md substitution 6."""
        ratios = []
        for size, distinct in [(40_000, 10_000), (160_000, 40_000)]:
            stream = zipf_stream(size, distinct, 1.4, seed=9)
            queries = frequency_weighted_queries(stream, 5000, seed=10)
            truths = [stream.exact.count_of(int(k)) for k in queries]
            count_min = CountMinSketch(8, total_bytes=64 * 1024, seed=3)
            count_min.update_batch(stream.keys)
            asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=3)
            asketch.process_stream(stream.keys)
            cms_error = observed_error_percent(
                count_min.estimate_batch(queries), truths
            )
            asketch_error = observed_error_percent(
                asketch.query_batch(queries), truths
            )
            ratios.append((cms_error + 1e-12) / (asketch_error + 1e-12))
        for ratio in ratios:
            assert ratio >= 1.0
