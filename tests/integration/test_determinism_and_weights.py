"""Determinism and weighted-update integration coverage."""

from __future__ import annotations

import numpy as np

from repro.core.asketch import ASketch
from repro.counters.exact import ExactCounter
from repro.experiments import ExperimentConfig, run_experiment


class TestDeterminism:
    """Reproducibility of the reproduction: same seed, same numbers."""

    def test_experiment_reruns_identically(self):
        config = ExperimentConfig(scale=0.05, runs=1, seed=9)
        first = run_experiment("table5", config)
        second = run_experiment("table5", config)
        assert first.rows == second.rows

    def test_asketch_run_identical_across_instances(self, skewed_stream):
        runs = []
        for _ in range(2):
            asketch = ASketch(total_bytes=64 * 1024, filter_items=16,
                              seed=20)
            asketch.process_stream(skewed_stream.keys)
            runs.append(
                (
                    asketch.exchange_count,
                    asketch.overflow_mass,
                    sorted(asketch.top_k(16)),
                )
            )
        assert runs[0] == runs[1]

    def test_different_seed_different_sketch_state(self, skewed_stream):
        first = ASketch(total_bytes=64 * 1024, seed=1)
        second = ASketch(total_bytes=64 * 1024, seed=2)
        first.process_stream(skewed_stream.keys[:5000])
        second.process_stream(skewed_stream.keys[:5000])
        assert not np.array_equal(first.sketch.table, second.sketch.table)


class TestWeightedUpdates:
    """The paper's (k, u) tuples with u > 1 (§3 footnote 3)."""

    def test_weighted_one_sided(self, rng):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8, seed=21)
        exact = ExactCounter()
        for _ in range(3000):
            key = int(rng.integers(0, 100))
            amount = int(rng.integers(1, 20))
            asketch.update(key, amount)
            exact.update(key, amount)
        for key, count in exact.items():
            assert asketch.query(key) >= count

    def test_weighted_mass_accounting(self, rng):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8, seed=22)
        total = 0
        for _ in range(2000):
            amount = int(rng.integers(1, 10))
            asketch.update(int(rng.integers(0, 500)), amount)
            total += amount
        assert asketch.total_mass == total
        resident = sum(
            entry.resident_count for entry in asketch.filter.entries()
        )
        assert resident + asketch.sketch.total_count() == total

    def test_weighted_equivalent_to_repeated_units_for_filter_items(self):
        """For a filter-resident key, one +u equals u unit updates."""
        weighted = ASketch(total_bytes=32 * 1024, filter_items=4, seed=23)
        unit = ASketch(total_bytes=32 * 1024, filter_items=4, seed=23)
        weighted.update(7, 50)
        for _ in range(50):
            unit.update(7)
        assert weighted.query(7) == unit.query(7) == 50


class TestProcessVsUpdateEquivalence:
    def test_identical_state_transitions(self, skewed_stream):
        via_update = ASketch(total_bytes=32 * 1024, filter_items=8, seed=24)
        via_process = ASketch(total_bytes=32 * 1024, filter_items=8, seed=24)
        for key in skewed_stream.keys[:5000].tolist():
            via_update.update(key)
            via_process.process(key)
        assert np.array_equal(
            via_update.sketch.table, via_process.sketch.table
        )
        assert sorted(via_update.top_k(8)) == sorted(via_process.top_k(8))
        assert via_update.exchange_count == via_process.exchange_count
