"""Unit tests for the emulated SSE2 register and intrinsics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simd.register import (
    M128,
    builtin_ctz,
    mm_cmpeq_epi32,
    mm_movemask_epi8,
    mm_packs_epi32,
    mm_set1_epi32,
)


class TestM128:
    def test_int32_roundtrip(self):
        lanes = np.array([1, -2, 3, -4], dtype=np.int32)
        register = M128.from_int32_lanes(lanes)
        np.testing.assert_array_equal(register.as_int32_lanes(), lanes)

    def test_int16_roundtrip(self):
        lanes = np.array([1, -1, 2, -2, 3, -3, 4, -4], dtype=np.int16)
        register = M128.from_int16_lanes(lanes)
        np.testing.assert_array_equal(register.as_int16_lanes(), lanes)

    def test_requires_four_int32_lanes(self):
        with pytest.raises(ValueError):
            M128.from_int32_lanes(np.array([1, 2, 3], dtype=np.int32))

    def test_equality_and_hash(self):
        a = M128.from_int32_lanes(np.array([1, 2, 3, 4], dtype=np.int32))
        b = M128.from_int32_lanes(np.array([1, 2, 3, 4], dtype=np.int32))
        c = M128.from_int32_lanes(np.array([1, 2, 3, 5], dtype=np.int32))
        assert a == b
        assert a != c
        assert hash(a) == hash(b)


class TestSet1:
    def test_broadcasts_value(self):
        register = mm_set1_epi32(7)
        np.testing.assert_array_equal(
            register.as_int32_lanes(), np.full(4, 7, dtype=np.int32)
        )

    def test_wraps_like_c_cast(self):
        register = mm_set1_epi32(2**31)  # wraps to INT32_MIN
        assert register.as_int32_lanes()[0] == -(2**31)


class TestCmpeq:
    def test_matching_lane_is_all_ones(self):
        a = M128.from_int32_lanes(np.array([5, 6, 7, 8], dtype=np.int32))
        b = mm_set1_epi32(7)
        mask = mm_cmpeq_epi32(b, a).as_int32_lanes()
        np.testing.assert_array_equal(mask, [0, 0, -1, 0])

    def test_no_match_is_zero(self):
        a = M128.from_int32_lanes(np.array([1, 2, 3, 4], dtype=np.int32))
        mask = mm_cmpeq_epi32(mm_set1_epi32(9), a).as_int32_lanes()
        np.testing.assert_array_equal(mask, [0, 0, 0, 0])


class TestPacks:
    def test_lane_order_low_then_high(self):
        a = M128.from_int32_lanes(np.array([1, 2, 3, 4], dtype=np.int32))
        b = M128.from_int32_lanes(np.array([5, 6, 7, 8], dtype=np.int32))
        packed = mm_packs_epi32(a, b).as_int16_lanes()
        np.testing.assert_array_equal(packed, [1, 2, 3, 4, 5, 6, 7, 8])

    def test_signed_saturation(self):
        a = M128.from_int32_lanes(
            np.array([2**31 - 1, -(2**31), 0, -1], dtype=np.int32)
        )
        packed = mm_packs_epi32(a, a).as_int16_lanes()
        assert packed[0] == 2**15 - 1
        assert packed[1] == -(2**15)
        assert packed[3] == -1

    def test_all_ones_mask_survives_packing(self):
        ones = M128.from_int32_lanes(np.full(4, -1, dtype=np.int32))
        packed = mm_packs_epi32(ones, ones).as_int16_lanes()
        np.testing.assert_array_equal(packed, np.full(8, -1, dtype=np.int16))


class TestMovemaskAndCtz:
    def test_movemask_gathers_sign_bits(self):
        raw = np.zeros(16, dtype=np.uint8)
        raw[0] = 0x80
        raw[5] = 0xFF
        raw[15] = 0x80
        mask = mm_movemask_epi8(M128(raw))
        assert mask == (1 << 0) | (1 << 5) | (1 << 15)

    def test_movemask_zero(self):
        assert mm_movemask_epi8(M128(np.zeros(16, dtype=np.uint8))) == 0

    @pytest.mark.parametrize(
        "value,expected", [(1, 0), (2, 1), (8, 3), (0b101000, 3), (1 << 15, 15)]
    )
    def test_ctz(self, value, expected):
        assert builtin_ctz(value) == expected

    def test_ctz_zero_undefined(self):
        with pytest.raises(ValueError):
            builtin_ctz(0)
