"""Tests for the three find-index kernels and their equivalence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simd.engine import (
    ITEMS_PER_BLOCK,
    numpy_find_index,
    scalar_find_index,
    simd_find_index,
    simd_probe_blocks,
)

KERNELS = [simd_find_index, numpy_find_index, scalar_find_index]


class TestProbeBlocks:
    @pytest.mark.parametrize(
        "n,expected", [(0, 0), (1, 1), (16, 1), (17, 2), (32, 2), (33, 3)]
    )
    def test_ceil_division(self, n, expected):
        assert simd_probe_blocks(n) == expected

    def test_block_size_matches_paper_kernel(self):
        assert ITEMS_PER_BLOCK == 16


class TestKernels:
    @pytest.mark.parametrize("kernel", KERNELS)
    def test_finds_present_item(self, kernel):
        ids = np.array([3, 9, 27, 81], dtype=np.int32)
        assert kernel(ids, 27) == 2

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_absent_item_returns_minus_one(self, kernel):
        ids = np.array([3, 9, 27, 81], dtype=np.int32)
        assert kernel(ids, 5) == -1

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_first_position(self, kernel):
        ids = np.arange(1, 33, dtype=np.int32)
        assert kernel(ids, 1) == 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_last_position_multi_block(self, kernel):
        ids = np.arange(1, 41, dtype=np.int32)  # 40 ids: 3 blocks
        assert kernel(ids, 40) == 39

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_duplicate_returns_first(self, kernel):
        ids = np.array([5, 7, 7, 7], dtype=np.int32)
        assert kernel(ids, 7) == 1

    def test_simd_ignores_tail_padding(self):
        # Block is padded with zeros; searching for a real id must not be
        # confused, and ids are always >= 1 by the key+1 convention.
        ids = np.array([4, 5, 6], dtype=np.int32)
        assert simd_find_index(ids, 6) == 2
        assert simd_find_index(ids, 99) == -1


class TestEquivalence:
    def test_all_kernels_agree_randomised(self, rng):
        for _ in range(50):
            size = int(rng.integers(1, 70))
            ids = rng.integers(1, 200, size=size).astype(np.int32)
            probe = int(rng.integers(0, 220))
            results = {kernel(ids, probe) for kernel in KERNELS}
            assert len(results) == 1, (ids, probe, results)

    def test_agree_on_filter_like_arrays(self, rng):
        # 32-slot filter arrays with empty (0) slots interleaved.
        for _ in range(30):
            ids = np.zeros(32, dtype=np.int32)
            occupied = rng.choice(32, size=20, replace=False)
            ids[occupied] = rng.integers(1, 10_000, size=20)
            target = int(ids[occupied[0]])
            assert (
                simd_find_index(ids, target)
                == numpy_find_index(ids, target)
                == scalar_find_index(ids, target)
            )
