"""Tests for the hash-partitioned ASketch shards."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.runtime.sharding import ShardedASketch
from repro.streams.zipf import zipf_stream

@pytest.fixture(scope="module")
def stream():
    return zipf_stream(40_000, 10_000, 1.5, seed=161)

@pytest.fixture()
def sharded():
    return ShardedASketch(4, total_bytes=32 * 1024, filter_items=16, seed=14)


class TestRouting:
    def test_invalid_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedASketch(0, total_bytes=32 * 1024)

    def test_ownership_deterministic(self, sharded):
        for key in range(100):
            assert sharded.shard_of(key) == sharded.shard_of(key)
            assert 0 <= sharded.shard_of(key) < 4

    def test_mass_partitioned_completely(self, sharded, stream):
        sharded.process_stream(stream.keys)
        assert sharded.total_mass == len(stream)
        per_shard = [shard.total_mass for shard in sharded.shards]
        assert all(mass > 0 for mass in per_shard)

    def test_key_mass_on_owner_only(self, sharded, stream):
        sharded.process_stream(stream.keys)
        key = int(stream.true_top_k(1)[0][0])
        owner = sharded.shard_of(key)
        for index, shard in enumerate(sharded.shards):
            estimate = shard.query(key)
            if index == owner:
                assert estimate > 0
            else:
                # Non-owners never saw the key; only collisions remain.
                assert estimate < stream.exact.count_of(key)


class TestQueries:
    def test_one_sided(self, sharded, stream):
        sharded.process_stream(stream.keys)
        for key, count in stream.exact.top_k(300):
            assert sharded.query(key) >= count

    def test_chunked_equals_whole(self, stream):
        whole = ShardedASketch(4, total_bytes=32 * 1024, seed=15)
        whole.process_stream(stream.keys)
        chunked = ShardedASketch(4, total_bytes=32 * 1024, seed=15)
        for chunk in stream.chunks(4_000):
            chunked.process_stream(chunk)
        probe = stream.keys[:200]
        assert whole.query_batch(probe) == chunked.query_batch(probe)

    def test_global_topk(self, sharded, stream):
        sharded.process_stream(stream.keys)
        reported = {key for key, _ in sharded.top_k(10)}
        truth = {key for key, _ in stream.true_top_k(10)}
        assert len(reported & truth) >= 9

    def test_heavy_hitters_global(self, sharded, stream):
        sharded.process_stream(stream.keys)
        threshold = int(0.01 * len(stream))
        reported = {key for key, _ in sharded.heavy_hitters(threshold)}
        for key, count in stream.exact.items():
            if count >= threshold:
                assert key in reported

    def test_update_and_remove_route_consistently(self, sharded):
        sharded.update(42, 10)
        assert sharded.query(42) >= 10
        sharded.remove(42, 4)
        assert sharded.query(42) >= 6

    def test_size_accounting(self, sharded):
        assert sharded.size_bytes == sum(
            shard.size_bytes for shard in sharded.shards
        )
