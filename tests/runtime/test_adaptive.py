"""AdaptiveController: online filter re-tuning from live signals."""

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError
from repro.obs import install_registry, uninstall_registry
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import (
    RecordingTraceSink,
    install_tracer,
    uninstall_tracer,
)
from repro.runtime.adaptive import AdaptiveController
from repro.runtime.engine import StreamEngine
from repro.runtime.sharding import ShardedASketch
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream


def _drift_keys(phases: int = 2, per_phase: int = 20_000) -> np.ndarray:
    """Zipf phases whose heavy hitters rotate to a disjoint key range."""
    chunks = []
    for phase in range(phases):
        stream = zipf_stream(per_phase, 4_000, 1.4, seed=50 + phase)
        chunks.append(stream.keys + phase * 1_000_000)
    return np.concatenate(chunks)


class TestValidation:
    def test_parameter_validation(self):
        asketch = ASketch(total_bytes=8 * 1024, filter_items=8)
        for kwargs in (
            {"target_hit_rate": 0.0},
            {"target_hit_rate": 1.5},
            {"grow_factor": 1.0},
            {"shrink_factor": 0.0},
            {"shrink_factor": 1.0},
            {"min_filter_items": 0},
            {"min_filter_items": 64, "max_filter_items": 8},
        ):
            with pytest.raises(ConfigurationError):
                AdaptiveController(asketch, **kwargs)

    def test_rejects_targets_without_resizable_filter(self):
        controller = AdaptiveController.__new__(AdaptiveController)
        controller.synopsis = CountMinSketch(total_bytes=4 * 1024)
        with pytest.raises(ConfigurationError, match="resizable filter"):
            controller._targets()


class TestDecisions:
    def test_grows_when_hit_rate_collapses(self):
        """Rotated heavy hitters tank the hit-rate; the filter grows."""
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8)
        controller = AdaptiveController(
            asketch,
            target_hit_rate=0.7,
            min_window_items=100,
            cooldown_windows=0,
        )
        keys = _drift_keys()
        asketch.process_batch(keys[:20_000])
        controller(20_000)  # warm phase: may hold or not
        asketch.process_batch(keys[20_000:24_000])  # post-rotation chunk
        action = controller(24_000)
        assert action == "grow"
        assert asketch.filter.capacity > 8
        assert controller.resize_count >= 1

    def test_shrinks_when_hit_rate_is_near_perfect(self):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=64)
        controller = AdaptiveController(
            asketch,
            shrink_above=0.5,
            grow_exchange_rate=10.0,
            target_hit_rate=0.01,
            min_window_items=100,
        )
        # A single hot key: ~every tuple is a filter hit.
        asketch.process_batch(np.full(5_000, 7, dtype=np.int64))
        assert controller(5_000) == "shrink"
        assert asketch.filter.capacity == 32

    def test_small_windows_hold(self):
        asketch = ASketch(total_bytes=8 * 1024, filter_items=8)
        controller = AdaptiveController(asketch, min_window_items=10_000)
        asketch.process_batch(_drift_keys()[:5_000])
        assert controller() == "hold"
        assert controller.decisions == []

    def test_cooldown_suppresses_consecutive_resizes(self):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8)
        controller = AdaptiveController(
            asketch, min_window_items=100, cooldown_windows=1
        )
        keys = _drift_keys()
        asketch.process_batch(keys[20_000:24_000])
        assert controller(4_000) == "grow"
        asketch.process_batch(keys[24_000:28_000])
        assert controller(8_000) == "hold"  # cooling down
        asketch.process_batch(keys[28_000:32_000])
        assert controller(12_000) in ("grow", "hold")

    def test_resize_bounds_respected(self):
        asketch = ASketch(total_bytes=64 * 1024, filter_items=8)
        controller = AdaptiveController(
            asketch,
            min_window_items=100,
            max_filter_items=16,
            target_hit_rate=1.0,
        )
        keys = _drift_keys()
        for stop in range(4_000, 40_001, 4_000):
            asketch.process_batch(keys[stop - 4_000 : stop])
            controller(stop)
        assert asketch.filter.capacity <= 16


class TestSignals:
    def test_registry_counters_drive_decisions(self):
        registry = MetricsRegistry()
        install_registry(registry)
        try:
            asketch = ASketch(total_bytes=32 * 1024, filter_items=8)
            controller = AdaptiveController(asketch, min_window_items=100)
            assert registry.get("asketch_items_total") is None
            keys = _drift_keys()
            asketch.process_batch(keys[20_000:24_000])
            assert registry.value("asketch_items_total") == 4_000
            assert controller(4_000) == "grow"
            assert registry.value("adaptive_resizes_total") == 1
            assert registry.value("adaptive_filter_items") > 8
        finally:
            uninstall_registry()

    def test_fallback_signals_without_registry(self):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8)
        controller = AdaptiveController(asketch, min_window_items=100)
        asketch.process_batch(_drift_keys()[20_000:24_000])
        assert controller(4_000) == "grow"

    def test_every_decision_is_traced(self):
        sink = RecordingTraceSink()
        install_tracer(sink)
        try:
            asketch = ASketch(total_bytes=32 * 1024, filter_items=8)
            controller = AdaptiveController(asketch, min_window_items=100)
            asketch.process_batch(_drift_keys()[20_000:24_000])
            controller(4_000)
        finally:
            uninstall_tracer()
        decisions = [
            e for e in sink.events if e.name == "adaptive_decision"
        ]
        assert len(decisions) == 1
        attrs = decisions[0].attrs
        assert attrs["action"] == "grow"
        assert attrs["window_items"] == 4_000
        assert attrs["filter_items"] == asketch.filter.capacity
        # The resize itself also leaves its stage-level trace point.
        assert any(e.name == "filter_resize" for e in sink.events)


class TestShardedTargets:
    def test_resizes_every_shard(self):
        group = ShardedASketch(3, 16 * 1024, filter_items=8, seed=2)
        controller = AdaptiveController(
            group, target_hit_rate=0.9, min_window_items=100
        )
        group.process_stream(_drift_keys()[20_000:24_000])
        assert controller(4_000) == "grow"
        assert all(s.filter.capacity > 8 for s in group.shards)


class TestEngineIntegration:
    def test_runs_as_periodic_consumer(self):
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8)
        controller = AdaptiveController(asketch, min_window_items=500)
        engine = StreamEngine(asketch)
        engine.every(5_000, controller, name="adaptive")
        keys = _drift_keys()
        engine.run(keys[i : i + 2_500] for i in range(0, keys.size, 2_500))
        assert len(controller.decisions) >= 4
        assert controller.resize_count >= 1
        # One-sidedness survives every resize the run performed.
        stream_a = zipf_stream(20_000, 4_000, 1.4, seed=50)
        for key, count in list(stream_a.exact.items())[:300]:
            assert asketch.query(int(key)) >= count
