"""Tests for the streaming engine and its consumers."""

from __future__ import annotations

import pytest

import numpy as np

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError, PoisonChunkError
from repro.runtime.engine import (
    StreamEngine,
    ThresholdAlert,
    TopKBoard,
    coerce_chunk,
)
from repro.streams.zipf import zipf_stream

@pytest.fixture()
def asketch():
    return ASketch(total_bytes=64 * 1024, filter_items=32, seed=12)

@pytest.fixture(scope="module")
def stream():
    return zipf_stream(40_000, 10_000, 1.5, seed=151)


class TestEngine:
    def test_ingests_all_chunks(self, asketch, stream):
        engine = StreamEngine(asketch)
        stats = engine.run(stream.chunks(5_000))
        assert stats.tuples_ingested == len(stream)
        assert stats.chunks_ingested == 8
        assert asketch.total_mass == len(stream)
        assert stats.wall_throughput_items_per_ms > 0

    def test_consumer_fires_on_schedule(self, asketch, stream):
        engine = StreamEngine(asketch)
        firings: list[int] = []
        engine.every(10_000, firings.append, name="probe")
        engine.run(stream.chunks(5_000))
        assert firings == [10_000, 20_000, 30_000, 40_000]

    def test_consumer_catches_up_on_large_chunks(self, asketch, stream):
        """A chunk larger than the period fires the consumer repeatedly."""
        engine = StreamEngine(asketch)
        firings: list[int] = []
        engine.every(8_000, firings.append)
        engine.run([stream.keys])  # one 40K chunk
        assert firings == [40_000] * 5
        assert engine.stats.consumer_firings == 5

    def test_invalid_period(self, asketch):
        with pytest.raises(ConfigurationError):
            StreamEngine(asketch).every(0, lambda _: None)

    def test_works_with_plain_sketch(self, stream):
        from repro.sketches.count_min import CountMinSketch

        sketch = CountMinSketch(8, total_bytes=64 * 1024, seed=13)
        engine = StreamEngine(sketch)
        assert engine.batched is False  # no process_batch: scalar fallback
        engine.run(stream.chunks(10_000))
        assert sketch.ops.items == len(stream)


class TestBatchedIngest:
    """The engine drives batch-capable synopses through process_batch."""

    def test_asketch_defaults_to_batched(self, asketch):
        assert StreamEngine(asketch).batched is True

    def test_batched_requires_process_batch(self):
        from repro.sketches.count_min import CountMinSketch

        sketch = CountMinSketch(8, total_bytes=64 * 1024, seed=14)
        with pytest.raises(ConfigurationError):
            StreamEngine(sketch, batched=True)

    def test_scalar_opt_out_matches_reference(self, stream):
        """batched=False reproduces the per-item reference run exactly."""
        reference = ASketch(total_bytes=64 * 1024, filter_items=32, seed=12)
        reference.process_stream(stream.keys)
        scalar = ASketch(total_bytes=64 * 1024, filter_items=32, seed=12)
        engine = StreamEngine(scalar, batched=False)
        assert engine.batched is False
        engine.run(stream.chunks(5_000))
        assert {
            e.key: (e.new_count, e.old_count)
            for e in reference.filter.entries()
        } == {
            e.key: (e.new_count, e.old_count) for e in scalar.filter.entries()
        }

    def test_batched_ingest_totals_and_stats(self, asketch, stream):
        engine = StreamEngine(asketch)
        stats = engine.run(stream.chunks(5_000))
        assert stats.tuples_ingested == len(stream)
        assert stats.chunks_ingested == 8
        assert asketch.total_mass == len(stream)
        assert asketch.ops.items == len(stream)

    def test_topk_consumer_over_batched_ingest(self, asketch, stream):
        """The top-k continuous query sees the true heavy hitter through
        the batched path."""
        engine = StreamEngine(asketch)
        board = TopKBoard(asketch, k=5)
        engine.every(10_000, board)
        engine.run(stream.chunks(5_000))
        assert len(board.snapshots) == 4
        heaviest_true = max(stream.exact.items(), key=lambda kv: kv[1])[0]
        assert board.latest[0][0] == heaviest_true
        # Reported counts are one-sided over-estimates of the truth.
        for key, reported in board.latest:
            assert reported >= stream.exact.count_of(key)

    def test_threshold_alerts_over_batched_ingest(self, asketch, stream):
        engine = StreamEngine(asketch)
        threshold = int(0.01 * len(stream))
        alert = ThresholdAlert(asketch, threshold)
        engine.every(5_000, alert)
        engine.run(stream.chunks(5_000))
        keys = [key for _, key, _ in alert.alerts]
        assert len(keys) == len(set(keys))
        for key, count in stream.exact.items():
            if count >= threshold:
                assert key in alert.alerted_keys

    def test_sharded_group_batches_per_shard(self, stream):
        from repro.runtime.sharding import ShardedASketch

        group = ShardedASketch(shards=4, total_bytes=32 * 1024, seed=3)
        engine = StreamEngine(group)
        assert engine.batched is True
        engine.run(stream.chunks(8_000))
        assert group.total_mass == len(stream)
        # Batched owner-partitioned queries agree with scalar routing.
        probes = stream.keys[:500].tolist()
        assert group.query_batch(probes) == [group.query(k) for k in probes]


class TestTopKBoard:
    def test_snapshots_accumulate(self, asketch, stream):
        engine = StreamEngine(asketch)
        board = TopKBoard(asketch, k=5)
        engine.every(20_000, board)
        engine.run(stream.chunks(5_000))
        assert len(board.snapshots) == 2
        positions = [position for position, _ in board.snapshots]
        assert positions == [20_000, 40_000]
        assert len(board.latest) == 5

    def test_latest_matches_final_topk(self, asketch, stream):
        engine = StreamEngine(asketch)
        board = TopKBoard(asketch, k=10)
        engine.every(len(stream), board)
        engine.run(stream.chunks(5_000))
        assert board.latest == asketch.top_k(10)

    def test_empty_board(self, asketch):
        assert TopKBoard(asketch, k=3).latest == []

    def test_invalid_k(self, asketch):
        with pytest.raises(ConfigurationError):
            TopKBoard(asketch, k=0)


class TestThresholdAlert:
    def test_alerts_once_per_key(self, asketch, stream):
        engine = StreamEngine(asketch)
        threshold = int(0.01 * len(stream))
        alert = ThresholdAlert(asketch, threshold)
        engine.every(5_000, alert)
        engine.run(stream.chunks(5_000))
        keys = [key for _, key, _ in alert.alerts]
        assert len(keys) == len(set(keys))  # no duplicate alerts
        # Every true heavy key above the threshold eventually alerted.
        for key, count in stream.exact.items():
            if count >= threshold:
                assert key in alert.alerted_keys

    def test_alert_positions_monotone(self, asketch, stream):
        engine = StreamEngine(asketch)
        alert = ThresholdAlert(asketch, int(0.005 * len(stream)))
        engine.every(4_000, alert)
        engine.run(stream.chunks(4_000))
        positions = [position for position, _, _ in alert.alerts]
        assert positions == sorted(positions)

    def test_invalid_threshold(self, asketch):
        with pytest.raises(ConfigurationError):
            ThresholdAlert(asketch, 0)


class TestChunkValidation:
    def test_float_chunk_is_poison_with_index(self, asketch):
        engine = StreamEngine(asketch)
        chunks = [np.arange(10), np.arange(10) + 0.5]
        with pytest.raises(PoisonChunkError) as info:
            engine.run(chunks)
        assert info.value.chunk_index == 1
        assert "float keys" in str(info.value)
        # The healthy chunk before the poison one was ingested.
        assert engine.stats.chunks_ingested == 1

    def test_nan_chunk_names_the_nan(self):
        with pytest.raises(PoisonChunkError, match="NaN"):
            coerce_chunk(np.array([1.0, np.nan, 3.0]), 7)

    def test_object_chunk_is_poison(self):
        with pytest.raises(PoisonChunkError, match="object dtype") as info:
            coerce_chunk(np.array([1, "two", 3], dtype=object), 4)
        assert info.value.chunk_index == 4

    def test_2d_chunk_is_poison(self):
        with pytest.raises(PoisonChunkError, match="1-D"):
            coerce_chunk(np.arange(8).reshape(2, 4), 0)

    def test_negative_counts_are_poison(self):
        with pytest.raises(PoisonChunkError, match="strict-turnstile"):
            coerce_chunk(
                np.arange(3), 0, counts=np.array([1, -2, 3])
            )

    def test_count_shape_mismatch_is_poison(self):
        with pytest.raises(PoisonChunkError, match="does not match"):
            coerce_chunk(np.arange(3), 0, counts=np.arange(4))

    def test_clean_chunk_passes_through_as_int64(self):
        out = coerce_chunk(np.arange(5, dtype=np.int32), 0)
        assert out.dtype == np.int64
        assert out.flags["C_CONTIGUOUS"]
        assert out.tolist() == [0, 1, 2, 3, 4]


class TestConsumerMetering:
    def test_consumer_seconds_metered_separately(self, asketch, stream):
        engine = StreamEngine(asketch)

        def slow_consumer(_position):
            total = 0
            for value in range(20_000):
                total += value
            return total

        engine.every(5_000, slow_consumer)
        stats = engine.run(stream.chunks(5_000))
        assert stats.consumer_seconds > 0.0
        assert stats.consumer_firings == len(stream) // 5_000

    def test_no_consumers_means_zero_consumer_seconds(self, asketch, stream):
        engine = StreamEngine(asketch)
        stats = engine.run(stream.chunks(10_000))
        assert stats.consumer_seconds == 0.0
