"""Tests for the streaming engine and its consumers."""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError
from repro.runtime.engine import StreamEngine, ThresholdAlert, TopKBoard
from repro.streams.zipf import zipf_stream

@pytest.fixture()
def asketch():
    return ASketch(total_bytes=64 * 1024, filter_items=32, seed=12)

@pytest.fixture(scope="module")
def stream():
    return zipf_stream(40_000, 10_000, 1.5, seed=151)


class TestEngine:
    def test_ingests_all_chunks(self, asketch, stream):
        engine = StreamEngine(asketch)
        stats = engine.run(stream.chunks(5_000))
        assert stats.tuples_ingested == len(stream)
        assert stats.chunks_ingested == 8
        assert asketch.total_mass == len(stream)
        assert stats.wall_throughput_items_per_ms > 0

    def test_consumer_fires_on_schedule(self, asketch, stream):
        engine = StreamEngine(asketch)
        firings: list[int] = []
        engine.every(10_000, firings.append, name="probe")
        engine.run(stream.chunks(5_000))
        assert firings == [10_000, 20_000, 30_000, 40_000]

    def test_consumer_catches_up_on_large_chunks(self, asketch, stream):
        """A chunk larger than the period fires the consumer repeatedly."""
        engine = StreamEngine(asketch)
        firings: list[int] = []
        engine.every(8_000, firings.append)
        engine.run([stream.keys])  # one 40K chunk
        assert firings == [40_000] * 5
        assert engine.stats.consumer_firings == 5

    def test_invalid_period(self, asketch):
        with pytest.raises(ConfigurationError):
            StreamEngine(asketch).every(0, lambda _: None)

    def test_works_with_plain_sketch(self, stream):
        from repro.sketches.count_min import CountMinSketch

        sketch = CountMinSketch(8, total_bytes=64 * 1024, seed=13)
        engine = StreamEngine(sketch)
        assert engine.batched is False  # no process_batch: scalar fallback
        engine.run(stream.chunks(10_000))
        assert sketch.ops.items == len(stream)


class TestBatchedIngest:
    """The engine drives batch-capable synopses through process_batch."""

    def test_asketch_defaults_to_batched(self, asketch):
        assert StreamEngine(asketch).batched is True

    def test_batched_requires_process_batch(self):
        from repro.sketches.count_min import CountMinSketch

        sketch = CountMinSketch(8, total_bytes=64 * 1024, seed=14)
        with pytest.raises(ConfigurationError):
            StreamEngine(sketch, batched=True)

    def test_scalar_opt_out_matches_reference(self, stream):
        """batched=False reproduces the per-item reference run exactly."""
        reference = ASketch(total_bytes=64 * 1024, filter_items=32, seed=12)
        reference.process_stream(stream.keys)
        scalar = ASketch(total_bytes=64 * 1024, filter_items=32, seed=12)
        engine = StreamEngine(scalar, batched=False)
        assert engine.batched is False
        engine.run(stream.chunks(5_000))
        assert {
            e.key: (e.new_count, e.old_count)
            for e in reference.filter.entries()
        } == {
            e.key: (e.new_count, e.old_count) for e in scalar.filter.entries()
        }

    def test_batched_ingest_totals_and_stats(self, asketch, stream):
        engine = StreamEngine(asketch)
        stats = engine.run(stream.chunks(5_000))
        assert stats.tuples_ingested == len(stream)
        assert stats.chunks_ingested == 8
        assert asketch.total_mass == len(stream)
        assert asketch.ops.items == len(stream)

    def test_topk_consumer_over_batched_ingest(self, asketch, stream):
        """The top-k continuous query sees the true heavy hitter through
        the batched path."""
        engine = StreamEngine(asketch)
        board = TopKBoard(asketch, k=5)
        engine.every(10_000, board)
        engine.run(stream.chunks(5_000))
        assert len(board.snapshots) == 4
        heaviest_true = max(stream.exact.items(), key=lambda kv: kv[1])[0]
        assert board.latest[0][0] == heaviest_true
        # Reported counts are one-sided over-estimates of the truth.
        for key, reported in board.latest:
            assert reported >= stream.exact.count_of(key)

    def test_threshold_alerts_over_batched_ingest(self, asketch, stream):
        engine = StreamEngine(asketch)
        threshold = int(0.01 * len(stream))
        alert = ThresholdAlert(asketch, threshold)
        engine.every(5_000, alert)
        engine.run(stream.chunks(5_000))
        keys = [key for _, key, _ in alert.alerts]
        assert len(keys) == len(set(keys))
        for key, count in stream.exact.items():
            if count >= threshold:
                assert key in alert.alerted_keys

    def test_sharded_group_batches_per_shard(self, stream):
        from repro.runtime.sharding import ShardedASketch

        group = ShardedASketch(shards=4, total_bytes=32 * 1024, seed=3)
        engine = StreamEngine(group)
        assert engine.batched is True
        engine.run(stream.chunks(8_000))
        assert group.total_mass == len(stream)
        # Batched owner-partitioned queries agree with scalar routing.
        probes = stream.keys[:500].tolist()
        assert group.query_batch(probes) == [group.query(k) for k in probes]


class TestTopKBoard:
    def test_snapshots_accumulate(self, asketch, stream):
        engine = StreamEngine(asketch)
        board = TopKBoard(asketch, k=5)
        engine.every(20_000, board)
        engine.run(stream.chunks(5_000))
        assert len(board.snapshots) == 2
        positions = [position for position, _ in board.snapshots]
        assert positions == [20_000, 40_000]
        assert len(board.latest) == 5

    def test_latest_matches_final_topk(self, asketch, stream):
        engine = StreamEngine(asketch)
        board = TopKBoard(asketch, k=10)
        engine.every(len(stream), board)
        engine.run(stream.chunks(5_000))
        assert board.latest == asketch.top_k(10)

    def test_empty_board(self, asketch):
        assert TopKBoard(asketch, k=3).latest == []

    def test_invalid_k(self, asketch):
        with pytest.raises(ConfigurationError):
            TopKBoard(asketch, k=0)


class TestThresholdAlert:
    def test_alerts_once_per_key(self, asketch, stream):
        engine = StreamEngine(asketch)
        threshold = int(0.01 * len(stream))
        alert = ThresholdAlert(asketch, threshold)
        engine.every(5_000, alert)
        engine.run(stream.chunks(5_000))
        keys = [key for _, key, _ in alert.alerts]
        assert len(keys) == len(set(keys))  # no duplicate alerts
        # Every true heavy key above the threshold eventually alerted.
        for key, count in stream.exact.items():
            if count >= threshold:
                assert key in alert.alerted_keys

    def test_alert_positions_monotone(self, asketch, stream):
        engine = StreamEngine(asketch)
        alert = ThresholdAlert(asketch, int(0.005 * len(stream)))
        engine.every(4_000, alert)
        engine.run(stream.chunks(4_000))
        positions = [position for position, _, _ in alert.alerts]
        assert positions == sorted(positions)

    def test_invalid_threshold(self, asketch):
        with pytest.raises(ConfigurationError):
            ThresholdAlert(asketch, 0)
