"""Cross-process chaos harness for the self-healing parallel runtime.

Each scenario composes several :class:`FaultPlan` cross-process faults
(kill -9, premature exit, hangs, snapshot corruption, in-worker poison,
transient ring errors) against a real spawned fleet, then asserts the
two invariants the runtime promises under *every* schedule:

1. **one-sided always** — estimates never under-count any key that
   actually reached a synopsis (quarantined payloads excluded until
   replayed from the dead-letter queue);
2. **exact once healed** — when every injected fault is of a kind the
   recovery tiers repair exactly (crash/exit/hang/corruption, no
   shedding or poison), the merged state is bit-identical to an
   uninterrupted single-process ingest.

Every scenario also checks resource hygiene: no leaked worker
processes and no leaked ``/dev/shm`` segments, even when workers died
by ``os._exit`` mid-handoff.
"""

from __future__ import annotations

import glob
import multiprocessing as mp
from collections import Counter

import numpy as np
import pytest

from repro.runtime.engine import StreamEngine
from repro.runtime.parallel import ParallelIngestRuntime
from repro.runtime.reliability import FaultPlan, RetryPolicy
from repro.runtime.sharding import ShardedASketch
from repro.streams.zipf import zipf_stream

GROUP_PARAMS = {"total_bytes": 16 * 1024, "filter_items": 16, "seed": 23}
CHUNK = 1_000


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(30_000, 8_000, 1.4, seed=97)


@pytest.fixture(autouse=True)
def no_leaks():
    """Leaked-process and shm-segment check after every scenario."""
    before = set(glob.glob("/dev/shm/psm_*"))
    yield
    assert set(glob.glob("/dev/shm/psm_*")) <= before, "leaked /dev/shm"
    assert mp.active_children() == [], "leaked worker processes"


def chunks_of(stream):
    keys = stream.keys
    return [keys[i : i + CHUNK] for i in range(0, keys.shape[0], CHUNK)]


def sequential_state(stream, shards):
    group = ShardedASketch(shards, **GROUP_PARAMS)
    StreamEngine(group, batched=True).run(chunks_of(stream))
    return group.state()


def assert_one_sided(runtime, stream):
    """Estimates must cover every key's true count, minus quarantined
    payloads (whose pristine copies sit in the parent DLQ)."""
    truth = Counter(int(k) for k in stream.keys)
    for letter in runtime.dead_letters.letters:
        if letter.payload is not None:
            truth.subtract(int(k) for k in letter.payload)
    for key, count in truth.most_common(64):
        assert runtime.supervisor.query(key) >= count, key


class TestExactRecoverySchedules:
    """Fault schedules the tiers repair exactly: bit-identity holds."""

    @pytest.mark.parametrize(
        "plan",
        [
            # two workers killed at different depths
            FaultPlan(worker_crash={0: 2, 1: 7}),
            # kill one, premature-exit another
            FaultPlan(worker_crash={2: 4}, worker_exit={0: 9}),
            # kill + hang at once
            FaultPlan(worker_crash={0: 3}, worker_hang={2: 5}),
            # corruption rejected, then the same worker killed
            FaultPlan(corrupt_snapshot={1: 2}, worker_crash={1: 8}),
            # transient ring errors + a kill elsewhere
            FaultPlan(
                worker_transient={0: {2: 3}}, worker_crash={1: 5}
            ),
        ],
        ids=["two-kills", "kill+exit", "kill+hang", "corrupt+kill",
             "transient+kill"],
    )
    def test_respawn_heals_to_bit_identity(self, stream, plan):
        expected = sequential_state(stream, shards=6)
        runtime = ParallelIngestRuntime(
            3,
            shards=6,
            sync_every=3,
            respawn=True,
            stall_timeout=1.5,
            slots=4,
            fault_plan=plan,
            **GROUP_PARAMS,
        )
        stats = runtime.run(chunks_of(stream))
        assert stats.tuples_ingested == len(stream)
        assert runtime.supervisor.group.state().equals(expected)
        assert_one_sided(runtime, stream)

    def test_kill_during_migration_window(self, stream):
        # The source of a shard migration is killed right around the
        # commit window; the shard must be counted exactly once.
        expected = sequential_state(stream, shards=6)
        runtime = ParallelIngestRuntime(
            3,
            shards=6,
            sync_every=2,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={1: 8}),
            **GROUP_PARAMS,
        )
        all_chunks = chunks_of(stream)

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 6:
                    assert runtime.reshard({1: 0, 4: 2}) == 2
                yield chunk

        runtime.run(driven())
        assert runtime.migrations == 2
        assert runtime.supervisor.group.state().equals(expected)
        assert_one_sided(runtime, stream)

    def test_reshard_across_repeated_kills(self, stream):
        # Migrations interleaved with kills of both endpoints.
        expected = sequential_state(stream, shards=4)
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            sync_every=2,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={0: 6, 1: 14}),
            **GROUP_PARAMS,
        )
        all_chunks = chunks_of(stream)

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 4:
                    runtime.reshard({1: 0})
                if index == 12:
                    runtime.reshard({1: 1, 3: 1})
                yield chunk

        runtime.run(driven())
        assert runtime.migrations >= 2
        assert runtime.supervisor.group.state().equals(expected)


class TestDegradedSchedules:
    """Schedules that legitimately lose exactness keep one-sidedness
    (modulo the documented dead-letter carve-outs) and report it."""

    def test_standby_after_budget_exhaustion_is_one_sided(self, stream):
        runtime = ParallelIngestRuntime(
            3,
            shards=6,
            sync_every=3,
            failover="standby",
            respawn=True,
            respawn_policy=RetryPolicy(max_retries=0),
            fault_plan=FaultPlan(worker_crash={1: 5}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        health = {h["worker"]: h for h in runtime.worker_health()}
        assert health[1]["status"] == "failed"
        assert runtime.health()["status"] == "degraded"
        assert_one_sided(runtime, stream)

    def test_poison_plus_kill_quarantines_and_heals(self, stream):
        runtime = ParallelIngestRuntime(
            3,
            shards=6,
            sync_every=3,
            respawn=True,
            fault_plan=FaultPlan(
                worker_poison={0: 4}, worker_crash={2: 6}
            ),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        assert runtime.quarantined_count == 1
        assert runtime.respawn_count == 1
        assert runtime.health()["status"] == "degraded"
        assert_one_sided(runtime, stream)
        # Replaying the quarantined payload restores full coverage.
        for letter in runtime.dead_letters.letters:
            runtime.supervisor.group.process_batch(letter.payload)
        for key, count in stream.exact.top_k(64):
            assert runtime.supervisor.query(int(key)) >= count

    def test_hang_with_load_shedding_stays_live(self, stream):
        runtime = ParallelIngestRuntime(
            3,
            shards=6,
            sync_every=3,
            stall_timeout=1.0,
            slots=2,
            load_shed=True,
            fault_plan=FaultPlan(worker_hang={1: 2}),
            **GROUP_PARAMS,
        )
        stats = runtime.run(chunks_of(stream))
        assert stats.chunks_ingested == len(chunks_of(stream))
        assert runtime.shed_chunks >= 1
        assert runtime.health()["status"] == "degraded"
        assert_one_sided(runtime, stream)


class TestEverythingAtOnce:
    def test_full_chaos_schedule(self, stream):
        # All fault kinds in one run: kill, exit, corruption, poison,
        # transient errors.  Poison forfeits bit-identity (documented),
        # so the invariant is one-sidedness + full coverage after DLQ
        # replay + clean healing of every recoverable fault.
        runtime = ParallelIngestRuntime(
            3,
            shards=6,
            sync_every=3,
            respawn=True,
            stall_timeout=2.0,
            fault_plan=FaultPlan(
                worker_crash={0: 5},
                worker_exit={1: 9},
                corrupt_snapshot={2: 1},
                worker_poison={2: 6},
                worker_transient={1: {1: 2}},
            ),
            **GROUP_PARAMS,
        )
        stats = runtime.run(chunks_of(stream))
        assert stats.tuples_ingested == len(stream)
        assert runtime.respawn_count == 2
        assert runtime.quarantined_count == 1
        assert_one_sided(runtime, stream)
        for letter in runtime.dead_letters.letters:
            runtime.supervisor.group.process_batch(letter.payload)
        for key, count in stream.exact.top_k(64):
            assert runtime.supervisor.query(int(key)) >= count
        # Every recoverable fault healed: no failed shards remain.
        assert runtime.supervisor.failed_shards == []
