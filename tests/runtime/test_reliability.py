"""Fault-injection tests for the reliability runtime.

Every guarantee the module documents is proven here against the
deterministic :class:`~repro.runtime.reliability.FaultPlan` harness:
exact crash recovery (kill at any chunk boundary, resume, states
bit-identical), corrupt-checkpoint fallback, retry budgets, poison
quarantine, and graceful shard degradation.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.errors import (
    ConfigurationError,
    PoisonChunkError,
    RecoveryError,
    RetryExhaustedError,
    TransientSourceError,
)
from repro.persistence import load_synopsis, save_synopsis
from repro.runtime.reliability import (
    CheckpointStore,
    DeadLetterQueue,
    FaultPlan,
    ResilientEngine,
    RetryingSource,
    RetryPolicy,
    ShardSupervisor,
    SimulatedCrash,
    corrupt_file,
)
from repro.streams.zipf import zipf_stream

CHUNK = 1_000


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(30_000, 8_000, 1.5, seed=91)


def make_asketch() -> ASketch:
    return ASketch(total_bytes=16 * 1024, filter_items=16, seed=5)


@pytest.fixture(scope="module")
def reference_state(stream):
    """State of an uninterrupted run over the module stream."""
    synopsis = make_asketch()
    ResilientEngine(synopsis).run(stream.chunks(CHUNK))
    return synopsis.state()


# -- atomic persistence ------------------------------------------------------


class TestAtomicSave:
    def test_interrupted_save_preserves_previous_checkpoint(
        self, tmp_path, monkeypatch
    ):
        """A crash mid-save can never clobber the existing archive."""
        path = tmp_path / "synopsis.npz"
        first = make_asketch()
        first.update(7, 3)
        save_synopsis(first, path)
        golden = path.read_bytes()

        import numpy as np_module

        def exploding_savez(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk full mid-write")

        monkeypatch.setattr(np_module, "savez_compressed", exploding_savez)
        second = make_asketch()
        with pytest.raises(OSError, match="disk full"):
            save_synopsis(second, path)
        monkeypatch.undo()

        assert path.read_bytes() == golden  # old checkpoint untouched
        assert list(tmp_path.glob("*.tmp")) == []  # no debris
        restored = load_synopsis(path)
        assert restored.query(7) >= 3

    def test_suffixless_path_still_lands_at_npz(self, tmp_path):
        """The historical np.savez suffix behaviour is preserved."""
        save_synopsis(make_asketch(), tmp_path / "ckpt")
        assert (tmp_path / "ckpt.npz").is_file()
        assert load_synopsis(tmp_path / "ckpt.npz") is not None


# -- retrying sources --------------------------------------------------------


class TestRetryingSource:
    def _flaky(self, failures: dict[int, int], n_chunks: int = 5):
        plan = FaultPlan(transient_errors=failures)
        return plan.wrap([np.arange(4) + i for i in range(n_chunks)])

    def test_transient_failures_are_retried_through(self):
        sleeps: list[float] = []
        source = RetryingSource(
            self._flaky({1: 2, 3: 1}), seed=4, sleep=sleeps.append
        )
        chunks = list(source)
        assert len(chunks) == 5
        assert source.retries == 3
        assert len(sleeps) == 3
        assert source.chunks_delivered == 5
        assert source.backoff_seconds == pytest.approx(sum(sleeps))

    def test_backoff_is_deterministic_for_a_seed(self):
        def run(seed):
            sleeps: list[float] = []
            list(
                RetryingSource(
                    self._flaky({0: 3}), seed=seed, sleep=sleeps.append
                )
            )
            return sleeps

        assert run(11) == run(11)
        assert run(11) != run(12)  # jitter decorrelates different seeds

    def test_backoff_grows_exponentially(self):
        sleeps: list[float] = []
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, jitter=0.0)
        list(
            RetryingSource(
                self._flaky({0: 3}),
                default_policy=policy,
                sleep=sleeps.append,
            )
        )
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])

    def test_exhaustion_raises_with_cause_and_positions(self):
        source = RetryingSource(
            self._flaky({2: 99}),
            default_policy=RetryPolicy(max_retries=3),
            sleep=lambda _: None,
        )
        with pytest.raises(RetryExhaustedError) as info:
            list(source)
        assert info.value.chunk_index == 2
        assert info.value.attempts == 4  # 1 + 3 retries
        assert isinstance(info.value.__cause__, TransientSourceError)

    def test_per_error_class_policies(self):
        class FlakyDisk(Exception):
            pass

        class DiskSource:
            def __init__(self):
                self.calls = 0

            def __iter__(self):
                return self

            def __next__(self):
                self.calls += 1
                if self.calls == 1:
                    raise FlakyDisk("EIO")
                if self.calls <= 3:
                    return np.arange(3)
                raise StopIteration

        source = RetryingSource(
            DiskSource(),
            policies={FlakyDisk: RetryPolicy(max_retries=2, jitter=0.0)},
            sleep=lambda _: None,
        )
        assert len(list(source)) == 2  # the FlakyDisk was retried
        assert source.retries == 1

    def test_unregistered_errors_propagate_untouched(self):
        class Fatal(Exception):
            pass

        class BadSource:
            def __iter__(self):
                return self

            def __next__(self):
                raise Fatal("not retryable")

        with pytest.raises(Fatal):
            next(iter(RetryingSource(BadSource(), sleep=lambda _: None)))


# -- dead letters ------------------------------------------------------------


class TestDeadLetterQueue:
    def test_capacity_bounds_retention(self):
        queue = DeadLetterQueue(capacity=2)
        for index in range(5):
            queue.quarantine(index, [index], "bad")
        assert len(queue) == 2
        assert queue.quarantined == 5
        assert queue.dropped == 3
        assert queue.chunk_indices() == [0, 1]

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            DeadLetterQueue(capacity=0)

    def test_engine_quarantines_poison_and_keeps_ingesting(self, stream):
        synopsis = make_asketch()
        engine = ResilientEngine(synopsis)
        plan = FaultPlan(seed=3, poison_chunks={2, 7, 11})
        stats = engine.run(stream.chunks(CHUNK), fault_plan=plan)
        # Three chunks quarantined, the rest ingested.
        assert engine.dead_letters.chunk_indices() == [2, 7, 11]
        assert stats.tuples_ingested == len(stream) - 3 * CHUNK
        assert synopsis.total_mass == len(stream) - 3 * CHUNK
        for letter in engine.dead_letters.letters:
            assert letter.reason  # validation failure recorded
        health = engine.health()
        assert health["status"] == "degraded"
        assert health["quarantined"] == 3

    def test_poison_variants_all_rejected(self):
        chunk = np.arange(8, dtype=np.int64)
        plan = FaultPlan(seed=0)
        from repro.runtime.engine import coerce_chunk

        for index in range(12):  # sweeps all three poison variants
            payload = plan.poison_payload(chunk, index)
            with pytest.raises(PoisonChunkError):
                coerce_chunk(payload, index)


# -- checkpoint store --------------------------------------------------------


class TestCheckpointStore:
    def test_save_load_roundtrip_with_positions(self, tmp_path):
        store = CheckpointStore(tmp_path)
        synopsis = make_asketch()
        synopsis.update(42, 9)
        record = store.save(synopsis, chunk_index=6, tuples_ingested=6_000)
        assert record["generation"] == 0
        loaded, loaded_record = store.load_latest()
        assert loaded_record["chunk_index"] == 6
        assert loaded_record["tuples_ingested"] == 6_000
        assert loaded.state().equals(synopsis.state())

    def test_generation_rotation_prunes_old_snapshots(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        synopsis = make_asketch()
        for position in range(5):
            store.save(
                synopsis,
                chunk_index=position,
                tuples_ingested=position * CHUNK,
            )
        snapshots = sorted(p.name for p in tmp_path.glob("gen-*.npz"))
        assert snapshots == ["gen-00000003.npz", "gen-00000004.npz"]
        # The journal keeps the full history even after pruning.
        assert [r["generation"] for r in store.journal_records()] == list(
            range(5)
        )

    def test_corrupt_latest_falls_back_one_generation(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        synopsis = make_asketch()
        synopsis.update(1, 5)
        store.save(synopsis, chunk_index=3, tuples_ingested=3_000)
        synopsis.update(2, 5)
        record = store.save(synopsis, chunk_index=6, tuples_ingested=6_000)
        corrupt_file(store.snapshot_path(record["generation"]), seed=9)
        loaded, loaded_record = store.load_latest()
        assert loaded_record["generation"] == 0
        assert loaded_record["chunk_index"] == 3
        assert loaded.query(2) == 0  # generation 0 predates key 2

    def test_all_generations_corrupt_raises_recovery_error(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        synopsis = make_asketch()
        for position in range(2):
            record = store.save(
                synopsis, chunk_index=position, tuples_ingested=position
            )
            corrupt_file(store.snapshot_path(record["generation"]), seed=1)
        with pytest.raises(RecoveryError, match="no recoverable checkpoint"):
            store.load_latest()

    def test_empty_store_loads_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load_latest() is None

    def test_torn_journal_line_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(make_asketch(), chunk_index=4, tuples_ingested=4_000)
        with open(store.journal_path, "a", encoding="utf-8") as handle:
            handle.write('{"generation": 1, "snapsho')  # torn mid-crash
        assert [r["generation"] for r in store.journal_records()] == [0]
        loaded, record = store.load_latest()
        assert record["generation"] == 0

    def test_invalid_keep_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointStore(tmp_path, keep=0)


# -- crash recovery ----------------------------------------------------------


class TestCrashRecovery:
    @pytest.mark.parametrize("crash_at", [1, 4, 13, 29])
    def test_kill_at_any_chunk_boundary_recovers_exactly(
        self, tmp_path, stream, reference_state, crash_at
    ):
        directory = tmp_path / f"crash-{crash_at}"
        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=directory, checkpoint_every=3
        )
        with pytest.raises(SimulatedCrash):
            engine.run(
                stream.chunks(CHUNK),
                fault_plan=FaultPlan(crash_at_chunk=crash_at),
            )
        # Exactly crash_at chunks made it in before the "kill -9".
        assert engine.stats.tuples_ingested == crash_at * CHUNK

        recovered = ResilientEngine(
            make_asketch(), checkpoint_dir=directory, checkpoint_every=3
        )
        stats = recovered.resume(stream.chunks(CHUNK))
        assert stats.tuples_ingested == len(stream)
        assert recovered.synopsis.state().equals(reference_state)

    def test_crash_before_first_checkpoint_restarts_cleanly(
        self, tmp_path, stream, reference_state
    ):
        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=tmp_path, checkpoint_every=10
        )
        with pytest.raises(SimulatedCrash):
            engine.run(
                stream.chunks(CHUNK), fault_plan=FaultPlan(crash_at_chunk=2)
            )
        assert engine.store.load_latest() is None  # nothing checkpointed yet
        recovered = ResilientEngine(
            make_asketch(), checkpoint_dir=tmp_path, checkpoint_every=10
        )
        recovered.resume(stream.chunks(CHUNK))
        assert recovered.synopsis.state().equals(reference_state)

    def test_corrupt_latest_checkpoint_falls_back_and_recovers(
        self, tmp_path, stream, reference_state
    ):
        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=tmp_path, checkpoint_every=3
        )
        plan = FaultPlan(crash_at_chunk=14, corrupt_checkpoint_after=4, seed=8)
        with pytest.raises(SimulatedCrash):
            engine.run(stream.chunks(CHUNK), fault_plan=plan)

        recovered = ResilientEngine(checkpoint_dir=tmp_path, checkpoint_every=3)
        recovered.resume(stream.chunks(CHUNK))
        # Fell back to generation 2 (chunk 9) and replayed the longer suffix.
        assert recovered.synopsis.state().equals(reference_state)

    def test_resume_without_checkpoint_or_synopsis_raises(self, tmp_path):
        engine = ResilientEngine(checkpoint_dir=tmp_path)
        with pytest.raises(RecoveryError, match="nothing to resume"):
            engine.resume([np.arange(4)])

    def test_resume_requires_checkpoint_dir(self):
        engine = ResilientEngine(make_asketch())
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            engine.resume([np.arange(4)])

    def test_resume_after_clean_finish_is_a_no_op(self, tmp_path, stream):
        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=tmp_path, checkpoint_every=4
        )
        engine.run(stream.chunks(CHUNK))
        final_state = engine.synopsis.state()
        again = ResilientEngine(checkpoint_dir=tmp_path, checkpoint_every=4)
        stats = again.resume(stream.chunks(CHUNK))
        assert stats.tuples_ingested == len(stream)
        assert again.synopsis.state().equals(final_state)

    def test_recovery_with_quarantined_chunks_in_suffix(
        self, tmp_path, stream
    ):
        """Poison chunks replay deterministically across the crash."""
        plan_faults = dict(seed=2, poison_chunks=frozenset({5, 16}))
        reference = make_asketch()
        ResilientEngine(reference).run(
            stream.chunks(CHUNK), fault_plan=FaultPlan(**plan_faults)
        )

        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=tmp_path, checkpoint_every=3
        )
        with pytest.raises(SimulatedCrash):
            engine.run(
                stream.chunks(CHUNK),
                fault_plan=FaultPlan(crash_at_chunk=14, **plan_faults),
            )
        recovered = ResilientEngine(checkpoint_dir=tmp_path, checkpoint_every=3)
        recovered.resume(
            stream.chunks(CHUNK), fault_plan=FaultPlan(**plan_faults)
        )
        assert recovered.synopsis.state().equals(reference.state())

    def test_consumers_fast_forward_past_restored_position(
        self, tmp_path, stream
    ):
        firings: list[int] = []
        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=tmp_path, checkpoint_every=4
        )
        engine.every(5_000, firings.append)
        with pytest.raises(SimulatedCrash):
            engine.run(
                stream.chunks(CHUNK), fault_plan=FaultPlan(crash_at_chunk=13)
            )
        pre_crash = list(firings)
        assert pre_crash == [5_000, 10_000]

        firings.clear()
        recovered = ResilientEngine(checkpoint_dir=tmp_path, checkpoint_every=4)
        recovered.every(5_000, firings.append)
        recovered.resume(stream.chunks(CHUNK))
        # Restored at chunk 12 (position 12_000): 5k and 10k had already
        # fired pre-crash; the resumed run fires only the remainder.
        assert firings == [15_000, 20_000, 25_000, 30_000]


# -- shard degradation -------------------------------------------------------


class TestShardSupervisor:
    def make_supervisor(self) -> ShardSupervisor:
        return ShardSupervisor(
            shards=4, total_bytes=8 * 1024, filter_items=8, seed=3
        )

    def test_forced_shard_failure_never_escapes_run(self, stream):
        supervisor = self.make_supervisor()
        engine = ResilientEngine(supervisor)
        stats = engine.run(
            stream.chunks(CHUNK), fault_plan=FaultPlan(fail_shard=(10, 2))
        )
        assert stats.tuples_ingested == len(stream)  # nothing lost
        assert supervisor.failed_shards == [2]
        health = engine.health()
        assert health["status"] == "degraded"
        statuses = [entry["status"] for entry in health["shards"]]
        assert statuses == ["ok", "ok", "failed", "ok"]
        assert health["shards"][2]["standby_tuples"] > 0
        assert "injected failure" in health["shards"][2]["error"]

    def test_degraded_estimates_stay_one_sided(self, stream):
        supervisor = self.make_supervisor()
        ResilientEngine(supervisor).run(
            stream.chunks(CHUNK), fault_plan=FaultPlan(fail_shard=(7, 1))
        )
        probes = np.unique(stream.keys[:4_000])
        estimates = supervisor.query_batch(probes)
        exact = stream.exact
        for key, estimate in zip(probes.tolist(), estimates):
            assert estimate >= exact.count_of(key), key
        assert supervisor.total_mass == len(stream)

    def test_query_batch_matches_scalar_queries_when_degraded(self, stream):
        supervisor = self.make_supervisor()
        ResilientEngine(supervisor).run(
            stream.chunks(CHUNK), fault_plan=FaultPlan(fail_shard=(3, 0))
        )
        probes = stream.keys[:500].tolist()
        assert supervisor.query_batch(probes) == [
            supervisor.query(key) for key in probes
        ]

    def test_real_exception_inside_shard_degrades(self, stream):
        supervisor = self.make_supervisor()

        def explode(*_args, **_kwargs):
            raise RuntimeError("simulated backend fault")

        supervisor.group.shards[3].process_batch = explode  # type: ignore
        supervisor.process_batch(stream.keys[:5_000])
        if 3 in {int(i) for i in supervisor.failed_shards}:
            assert "RuntimeError" in supervisor.shard_health()[3]["error"]
        # Whether shard 3 saw traffic or not, ingest never raised and the
        # group still answers queries.
        assert supervisor.query(int(stream.keys[0])) >= 0

    def test_top_k_still_answers_when_degraded(self, stream):
        supervisor = self.make_supervisor()
        engine = ResilientEngine(supervisor)
        engine.run(
            stream.chunks(CHUNK), fault_plan=FaultPlan(fail_shard=(20, 2))
        )
        top = supervisor.top_k(5)
        assert len(top) == 5
        heaviest_true = max(stream.exact.items(), key=lambda kv: kv[1])[0]
        assert heaviest_true in {key for key, _ in top}

    def test_state_roundtrip_preserves_degradation(self, stream):
        supervisor = self.make_supervisor()
        ResilientEngine(supervisor).run(
            stream.chunks(CHUNK), fault_plan=FaultPlan(fail_shard=(5, 1))
        )
        restored = ShardSupervisor.from_state(supervisor.state())
        assert restored.failed_shards == [1]
        assert restored.state().equals(supervisor.state())
        probes = stream.keys[:200].tolist()
        assert restored.query_batch(probes) == supervisor.query_batch(probes)

    def test_checkpoint_roundtrip_through_persistence(self, tmp_path, stream):
        supervisor = self.make_supervisor()
        ResilientEngine(supervisor).run(
            stream.chunks(CHUNK), fault_plan=FaultPlan(fail_shard=(5, 1))
        )
        save_synopsis(supervisor, tmp_path / "supervised.npz")
        restored = load_synopsis(tmp_path / "supervised.npz")
        assert isinstance(restored, ShardSupervisor)
        assert restored.failed_shards == [1]
        assert restored.state().equals(supervisor.state())

    def test_crash_recovery_of_supervised_group(self, tmp_path, stream):
        reference = self.make_supervisor()
        ResilientEngine(reference).run(stream.chunks(CHUNK))

        engine = ResilientEngine(
            self.make_supervisor(),
            checkpoint_dir=tmp_path,
            checkpoint_every=4,
        )
        with pytest.raises(SimulatedCrash):
            engine.run(
                stream.chunks(CHUNK), fault_plan=FaultPlan(crash_at_chunk=17)
            )
        recovered = ResilientEngine(checkpoint_dir=tmp_path, checkpoint_every=4)
        recovered.resume(stream.chunks(CHUNK))
        assert recovered.synopsis.state().equals(reference.state())

    def test_spec_construction(self):
        from repro.synopses.spec import SynopsisSpec, build_synopsis

        supervisor = build_synopsis(
            SynopsisSpec(
                "shard-supervisor",
                {"shards": 2, "total_bytes": 4 * 1024, "seed": 1},
            )
        )
        assert isinstance(supervisor, ShardSupervisor)
        assert len(supervisor) == 2

    def test_merge_unions_failures_and_standbys(self, stream):
        left = self.make_supervisor()
        right = self.make_supervisor()
        half = len(stream) // 2
        ResilientEngine(left).run(
            [stream.keys[:half]], fault_plan=FaultPlan(fail_shard=(0, 1))
        )
        ResilientEngine(right).run([stream.keys[half:]])
        left.merge(right)
        assert left.failed_shards == [1]
        assert left.total_mass == len(stream)
        exact = stream.exact
        for key in np.unique(stream.keys[:1_000]).tolist():
            assert left.query(key) >= exact.count_of(key)

    def test_update_fails_over_to_standby(self):
        supervisor = self.make_supervisor()
        supervisor.update(123, 4)
        owner = supervisor.group.shard_of(123)
        supervisor.inject_failure(owner)
        supervisor.update(123, 6)
        assert supervisor.failed_shards == [owner]
        assert supervisor.query(123) >= 10  # frozen(4) + standby(6)

    def test_bad_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            ShardSupervisor()  # neither a group nor parameters
        group = ShardSupervisor(shards=2, total_bytes=4096, seed=0).group
        with pytest.raises(ConfigurationError):
            ShardSupervisor(group, shards=2, total_bytes=4096)
        with pytest.raises(ConfigurationError):
            ShardSupervisor(group, standby_hashes=0)
        with pytest.raises(ConfigurationError):
            ShardSupervisor(group).inject_failure(99)


# -- engine health & retry integration ---------------------------------------


class TestEngineHealthAndRetries:
    def test_health_reports_checkpoint_lag_and_retries(self, tmp_path, stream):
        engine = ResilientEngine(
            make_asketch(),
            checkpoint_dir=tmp_path,
            checkpoint_every=4,
            sleep=lambda _: None,
        )
        plan = FaultPlan(transient_errors={3: 2, 9: 1}, crash_at_chunk=10)
        with pytest.raises(SimulatedCrash):
            engine.run(stream.chunks(CHUNK), fault_plan=plan)
        health = engine.health()
        assert health["retries"] == 3
        assert health["backoff_seconds"] > 0
        assert health["checkpoint"]["chunk_index"] == 8
        assert health["checkpoint_lag_chunks"] == 2  # chunks 8 and 9
        assert health["source_chunks_seen"] == 10

    def test_retry_exhaustion_escapes_run(self, stream):
        engine = ResilientEngine(
            make_asketch(),
            default_retry_policy=RetryPolicy(max_retries=1),
            sleep=lambda _: None,
        )
        plan = FaultPlan(transient_errors={2: 50})
        with pytest.raises(RetryExhaustedError):
            engine.run(stream.chunks(CHUNK), fault_plan=plan)

    def test_constructor_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResilientEngine()  # nothing to drive, nothing to resume
        with pytest.raises(ConfigurationError):
            ResilientEngine(make_asketch(), checkpoint_every=0)
        with pytest.raises(ConfigurationError):
            ResilientEngine(make_asketch()).every(0, lambda _: None)

    def test_fail_shard_requires_supervisor(self, stream):
        engine = ResilientEngine(make_asketch())
        with pytest.raises(ConfigurationError, match="ShardSupervisor"):
            engine.run(
                stream.chunks(CHUNK), fault_plan=FaultPlan(fail_shard=(0, 0))
            )


# -- journal format sanity ---------------------------------------------------


class TestJournalFormat:
    def test_journal_records_are_json_lines_with_positions(
        self, tmp_path, stream
    ):
        engine = ResilientEngine(
            make_asketch(), checkpoint_dir=tmp_path, checkpoint_every=10
        )
        engine.run(stream.chunks(CHUNK))
        lines = (
            (tmp_path / "journal.jsonl").read_text().strip().splitlines()
        )
        records = [json.loads(line) for line in lines]
        assert [r["chunk_index"] for r in records] == [10, 20, 30]
        assert records[-1]["tuples_ingested"] == len(stream)
        for record in records:
            assert set(record) >= {
                "generation",
                "snapshot",
                "chunk_index",
                "tuples_ingested",
                "sha256",
            }
