"""Tests for the shared-memory multiprocess ingest runtime.

Everything here runs real spawned worker processes (no mocks, no
threads-pretending-to-be-processes): the bit-identity, failover and
cleanup claims in :mod:`repro.runtime.parallel` are only worth anything
when exercised across actual process boundaries.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs import install_registry, uninstall_registry
from repro.runtime.engine import StreamEngine
from repro.runtime.parallel import (
    RING_TIMEOUT,
    ChunkRing,
    ParallelIngestRuntime,
    parallel_ingest,
)
from repro.runtime.reliability import CheckpointStore, FaultPlan, RetryPolicy
from repro.runtime.sharding import ShardedASketch
from repro.streams.zipf import zipf_stream

GROUP_PARAMS = {"total_bytes": 32 * 1024, "filter_items": 16, "seed": 31}


@pytest.fixture(scope="module")
def stream():
    return zipf_stream(40_000, 10_000, 1.5, seed=171)


def chunks_of(stream, size=4_000):
    keys = stream.keys
    return [keys[i : i + size] for i in range(0, keys.shape[0], size)]


def sequential_group(stream, shards, chunk_size=4_000):
    group = ShardedASketch(shards, **GROUP_PARAMS)
    StreamEngine(group, batched=True).run(chunks_of(stream, chunk_size))
    return group


def leaked_segments() -> list[str]:
    return glob.glob("/dev/shm/psm_*")


class TestChunkRing:
    def test_put_get_roundtrip(self):
        ring = ChunkRing(slots=4, slot_capacity=16)
        try:
            first = np.arange(10, dtype=np.int64)
            second = np.array([7, 7, 7], dtype=np.int64)
            assert ring.put(first, timeout=1.0)
            assert ring.put(second, timeout=1.0)
            assert ring.depth() == 2
            np.testing.assert_array_equal(ring.get(timeout=1.0), first)
            np.testing.assert_array_equal(ring.get(timeout=1.0), second)
            assert ring.depth() == 0
            assert ring.items_published() == 13
        finally:
            ring.close()
            ring.unlink()

    def test_eof_and_timeout_are_distinct(self):
        ring = ChunkRing(slots=2, slot_capacity=8)
        try:
            assert ring.get(timeout=0.01) is RING_TIMEOUT
            assert ring.close_producer(timeout=1.0)
            assert ring.get(timeout=1.0) is None
        finally:
            ring.close()
            ring.unlink()

    def test_full_ring_times_out_then_frees(self):
        ring = ChunkRing(slots=2, slot_capacity=8)
        try:
            chunk = np.ones(4, dtype=np.int64)
            assert ring.put(chunk, timeout=0.5)
            assert ring.put(chunk, timeout=0.5)
            assert not ring.put(chunk, timeout=0.01)  # full
            ring.get(timeout=1.0)
            assert ring.put(chunk, timeout=0.5)  # slot freed
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_chunk_rejected(self):
        ring = ChunkRing(slots=2, slot_capacity=8)
        try:
            with pytest.raises(ConfigurationError):
                ring.put(np.zeros(9, dtype=np.int64))
        finally:
            ring.close()
            ring.unlink()

    def test_empty_chunk_roundtrips(self):
        ring = ChunkRing(slots=2, slot_capacity=8)
        try:
            assert ring.put(np.empty(0, dtype=np.int64), timeout=1.0)
            out = ring.get(timeout=1.0)
            assert out is not None and out is not RING_TIMEOUT
            assert out.shape == (0,)
        finally:
            ring.close()
            ring.unlink()

    def test_geometry_validated(self):
        with pytest.raises(ConfigurationError):
            ChunkRing(slots=0)
        with pytest.raises(ConfigurationError):
            ChunkRing(slot_capacity=0)


class TestConfigValidation:
    def test_workers_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelIngestRuntime(0)

    def test_at_least_one_shard_per_worker(self):
        with pytest.raises(ConfigurationError):
            ParallelIngestRuntime(4, shards=2)

    def test_failover_mode_checked(self):
        with pytest.raises(ConfigurationError):
            ParallelIngestRuntime(2, failover="restart")

    def test_sync_every_positive(self):
        with pytest.raises(ConfigurationError):
            ParallelIngestRuntime(2, sync_every=0)

    def test_checkpoint_every_requires_store(self, stream):
        runtime = ParallelIngestRuntime(2, **GROUP_PARAMS)
        with pytest.raises(ConfigurationError):
            runtime.run(chunks_of(stream), checkpoint_every=2)


class TestBitIdentity:
    @pytest.mark.parametrize("workers,shards", [(1, 1), (2, 4), (3, 4)])
    def test_merged_equals_sequential(self, stream, workers, shards):
        sequential = sequential_group(stream, shards)
        supervisor, stats = parallel_ingest(
            iter(chunks_of(stream)), workers, shards=shards, **GROUP_PARAMS
        )
        assert stats.tuples_ingested == len(stream)
        assert supervisor.group.state().equals(sequential.state())
        queries = stream.keys[:500]
        assert supervisor.query_batch(queries) == [
            sequential.query(int(k)) for k in queries
        ]

    def test_uneven_chunks_and_empty_shares(self, stream):
        # Chunk sizes that don't divide evenly + more shards than
        # workers force some per-worker shares to be empty; the chunk
        # accounting must stay aligned regardless.
        sequential = sequential_group(stream, shards=5, chunk_size=1_777)
        supervisor, stats = parallel_ingest(
            iter(chunks_of(stream, 1_777)), 2, shards=5, **GROUP_PARAMS
        )
        assert stats.chunks_ingested == len(chunks_of(stream, 1_777))
        assert supervisor.group.state().equals(sequential.state())

    def test_worker_health_reports_clean_run(self, stream):
        runtime = ParallelIngestRuntime(2, shards=2, **GROUP_PARAMS)
        runtime.run(chunks_of(stream))
        health = runtime.worker_health()
        assert [entry["status"] for entry in health] == ["ok", "ok"]
        assert sum(entry["sent_items"] for entry in health) == len(stream)
        assert all(entry["error"] is None for entry in health)
        assert [entry["status"] for entry in runtime.shard_health()] == [
            "ok",
            "ok",
        ]


class TestInlineFailover:
    def test_crash_mid_stream_still_bit_identical(self, stream):
        sequential = sequential_group(stream, shards=4)
        supervisor, stats = parallel_ingest(
            iter(chunks_of(stream)),
            3,
            shards=4,
            sync_every=2,
            inject_crash={1: 3},
            **GROUP_PARAMS,
        )
        assert stats.tuples_ingested == len(stream)
        assert supervisor.group.state().equals(sequential.state())

    def test_crash_before_first_snapshot(self, stream):
        # Dies before any snapshot exists: the whole tail replays from
        # a fresh group.
        sequential = sequential_group(stream, shards=2)
        supervisor, _ = parallel_ingest(
            iter(chunks_of(stream)),
            2,
            shards=2,
            sync_every=100,
            inject_crash={0: 1},
            **GROUP_PARAMS,
        )
        assert supervisor.group.state().equals(sequential.state())

    def test_health_reflects_inlined_worker(self, stream):
        runtime = ParallelIngestRuntime(
            2, shards=2, sync_every=2, inject_crash={1: 2}, **GROUP_PARAMS
        )
        runtime.run(chunks_of(stream))
        health = {entry["worker"]: entry for entry in runtime.worker_health()}
        assert health[0]["status"] == "ok"
        assert health[1]["status"] == "inlined"
        assert "died" in health[1]["error"]
        # Inline recovery is exact, so the shards all still read ok.
        statuses = [entry["status"] for entry in runtime.shard_health()]
        assert statuses == ["ok", "ok"]


class TestStandbyFailover:
    def test_dead_workers_shards_degrade(self, stream):
        runtime = ParallelIngestRuntime(
            3,
            shards=4,
            sync_every=2,
            failover="standby",
            inject_crash={1: 3},
            **GROUP_PARAMS,
        )
        stats = runtime.run(chunks_of(stream))
        assert stats.tuples_ingested == len(stream)
        # Worker 1 owns exactly shard 1 (s % 3 == 1 for s in 0..3).
        statuses = {
            entry["shard"]: entry["status"]
            for entry in runtime.shard_health()
        }
        assert statuses == {0: "ok", 1: "failed", 2: "ok", 3: "ok"}
        health = {entry["worker"]: entry for entry in runtime.worker_health()}
        assert health[1]["status"] == "failed"

    def test_estimates_stay_one_sided(self, stream):
        supervisor, _ = parallel_ingest(
            iter(chunks_of(stream)),
            3,
            shards=4,
            sync_every=2,
            failover="standby",
            inject_crash={1: 3},
            **GROUP_PARAMS,
        )
        for key, count in stream.exact.top_k(50):
            assert supervisor.query(int(key)) >= count


class TestObservability:
    def test_parent_and_worker_metrics(self, stream):
        registry = install_registry()
        try:
            runtime = ParallelIngestRuntime(2, shards=4, **GROUP_PARAMS)
            runtime.run(chunks_of(stream))
            # Parent-side routing and fleet metrics.
            assert registry.value("engine_tuples_total") == len(stream)
            per_worker = [
                registry.value("parallel_worker_items_total", worker=str(w))
                for w in (0, 1)
            ]
            assert sum(per_worker) == len(stream)
            assert registry.value("parallel_workers_alive") is not None
            assert registry.value("shard_skew") > 0
            # Worker-side metrics arrive re-labelled with worker=<id>.
            worker_rows = [
                instrument
                for instrument in registry.instruments()
                if instrument.name == "shard_items_total"
                and dict(instrument.labels).get("worker") is not None
            ]
            assert worker_rows, "no forwarded worker metrics"
        finally:
            uninstall_registry()

    def test_failure_counter_increments(self, stream):
        registry = install_registry()
        try:
            parallel_ingest(
                iter(chunks_of(stream)),
                2,
                shards=2,
                sync_every=2,
                inject_crash={1: 2},
                **GROUP_PARAMS,
            )
            assert (
                registry.value(
                    "parallel_worker_failures_total", worker="1"
                )
                == 1
            )
        finally:
            uninstall_registry()


class TestCheckpointing:
    def test_periodic_checkpoints_are_consistent(self, stream, tmp_path):
        store = CheckpointStore(tmp_path)
        runtime = ParallelIngestRuntime(2, shards=4, **GROUP_PARAMS)
        runtime.run(
            chunks_of(stream), checkpoint_store=store, checkpoint_every=4
        )
        restored, record = store.load_latest()
        assert record["chunk_index"] == len(chunks_of(stream))
        assert record["tuples_ingested"] == len(stream)
        sequential = sequential_group(stream, shards=4)
        assert restored.group.state().equals(sequential.state())

    def test_mid_run_checkpoint_covers_prefix(self, stream, tmp_path):
        # Every checkpoint taken after k chunks must equal a sequential
        # ingest of exactly those k chunks (keep them all un-pruned).
        from repro.persistence import load_synopsis

        store = CheckpointStore(tmp_path, keep=16)
        runtime = ParallelIngestRuntime(2, shards=4, **GROUP_PARAMS)
        all_chunks = chunks_of(stream)
        runtime.run(
            all_chunks, checkpoint_store=store, checkpoint_every=3
        )
        records = store.journal_records()
        assert len(records) >= 2
        for record in records:
            restored = load_synopsis(
                store.snapshot_path(record["generation"])
            )
            prefix = ShardedASketch(4, **GROUP_PARAMS)
            StreamEngine(prefix, batched=True).run(
                all_chunks[: record["chunk_index"]]
            )
            assert restored.group.state().equals(prefix.state())


class TestResourceHygiene:
    def test_no_leaked_processes_or_shm(self, stream):
        import multiprocessing as mp

        before = set(leaked_segments())
        runtime = ParallelIngestRuntime(
            2, shards=2, sync_every=2, inject_crash={0: 2}, **GROUP_PARAMS
        )
        runtime.run(chunks_of(stream))
        assert set(leaked_segments()) <= before
        assert mp.active_children() == []

    def test_failed_worker_start_cleans_up(self, stream, monkeypatch):
        # If the Nth process fails to start, the rings and workers
        # already launched (and the ring created for the failed start)
        # must all be swept — nothing may leak.
        import multiprocessing as mp
        import multiprocessing.context as mp_context

        original = mp_context.SpawnProcess.start
        calls = {"n": 0}

        def flaky_start(self):
            calls["n"] += 1
            if calls["n"] == 2:
                raise OSError("injected spawn failure")
            return original(self)

        monkeypatch.setattr(mp_context.SpawnProcess, "start", flaky_start)
        before = set(leaked_segments())
        runtime = ParallelIngestRuntime(2, shards=2, **GROUP_PARAMS)
        with pytest.raises(OSError, match="injected spawn failure"):
            runtime.run(chunks_of(stream))
        assert set(leaked_segments()) <= before
        assert mp.active_children() == []

    def test_shutdown_even_when_source_raises(self, stream):
        runtime = ParallelIngestRuntime(2, shards=2, **GROUP_PARAMS)

        def exploding():
            yield chunks_of(stream)[0]
            raise RuntimeError("source failed")

        before = set(leaked_segments())
        with pytest.raises(RuntimeError, match="source failed"):
            runtime.run(exploding())
        import multiprocessing as mp

        assert set(leaked_segments()) <= before
        assert mp.active_children() == []


class TestRespawn:
    def test_killed_worker_respawns_bit_identical(self, stream):
        sequential = sequential_group(stream, shards=4)
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            sync_every=2,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={1: 3}),
            **GROUP_PARAMS,
        )
        stats = runtime.run(chunks_of(stream))
        assert stats.tuples_ingested == len(stream)
        assert runtime.respawn_count == 1
        assert runtime.supervisor.group.state().equals(sequential.state())
        # The replacement finished the stream on the ring tier and its
        # shards healed back: everything reads healthy at the end.
        health = {h["worker"]: h for h in runtime.worker_health()}
        assert health[1]["status"] == "ok"
        assert health[1]["respawns"] == 1
        assert runtime.health()["status"] == "ok"
        assert [s["status"] for s in runtime.shard_health()] == ["ok"] * 4

    def test_clean_exit_fault_also_respawns(self, stream):
        sequential = sequential_group(stream, shards=2)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=3,
            respawn=True,
            fault_plan=FaultPlan(worker_exit={0: 2}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        assert runtime.respawn_count == 1
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_crash_before_first_snapshot_respawns_from_scratch(self, stream):
        sequential = sequential_group(stream, shards=2)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=100,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={0: 1}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        assert runtime.respawn_count == 1
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_exhausted_budget_falls_back_to_inline(self, stream):
        sequential = sequential_group(stream, shards=2)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            respawn=True,
            respawn_policy=RetryPolicy(max_retries=0),
            fault_plan=FaultPlan(worker_crash={1: 2}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        assert runtime.respawn_count == 0
        health = {h["worker"]: h for h in runtime.worker_health()}
        assert health[1]["status"] == "inlined"
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_respawn_counter_and_trace_recorded(self, stream):
        registry = install_registry()
        try:
            runtime = ParallelIngestRuntime(
                2,
                shards=2,
                sync_every=2,
                respawn=True,
                fault_plan=FaultPlan(worker_crash={1: 2}),
                **GROUP_PARAMS,
            )
            runtime.run(chunks_of(stream))
            assert registry.value("worker_respawns_total", worker="1") == 1
        finally:
            uninstall_registry()


class TestStallDetection:
    def test_hung_worker_fails_over_inline(self, stream):
        # A hung worker is alive but makes no ring progress: liveness
        # polling alone would wait forever; the stall budget must trip
        # and the failover keep the result exact.
        sequential = sequential_group(stream, shards=2, chunk_size=1_000)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            stall_timeout=1.0,
            slots=2,
            fault_plan=FaultPlan(worker_hang={1: 2}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream, 1_000))
        assert runtime.stall_count >= 1
        health = {h["worker"]: h for h in runtime.worker_health()}
        assert health[1]["status"] == "inlined"
        assert "stalled" in health[1]["error"]
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_hung_worker_respawns_exactly(self, stream):
        sequential = sequential_group(stream, shards=2, chunk_size=1_000)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            stall_timeout=1.0,
            slots=2,
            respawn=True,
            fault_plan=FaultPlan(worker_hang={1: 2}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream, 1_000))
        assert runtime.stall_count >= 1
        assert runtime.respawn_count >= 1
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_stall_counter_recorded(self, stream):
        registry = install_registry()
        try:
            runtime = ParallelIngestRuntime(
                2,
                shards=2,
                sync_every=2,
                stall_timeout=1.0,
                slots=2,
                fault_plan=FaultPlan(worker_hang={0: 1}),
                **GROUP_PARAMS,
            )
            runtime.run(chunks_of(stream, 1_000))
            assert (
                registry.value("parallel_worker_stalls_total", worker="0")
                >= 1
            )
        finally:
            uninstall_registry()


class TestLoadShedding:
    def test_shed_instead_of_failover(self, stream):
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            stall_timeout=1.0,
            slots=2,
            load_shed=True,
            fault_plan=FaultPlan(worker_hang={1: 2}),
            **GROUP_PARAMS,
        )
        stats = runtime.run(chunks_of(stream, 1_000))
        assert stats.chunks_ingested == len(chunks_of(stream, 1_000))
        assert runtime.shed_chunks >= 1
        # Shed shares sit in the parent dead-letter queue with their
        # pristine payloads, and the fleet reads degraded (data is
        # missing from the synopsis until the letters are replayed).
        assert len(runtime.dead_letters) >= 1
        assert runtime.health()["status"] == "degraded"
        health = {h["worker"]: h for h in runtime.worker_health()}
        # Shedding kept ingest live through the stream (no failover
        # during feeding); at drain the hung worker cannot take its
        # EOF, so it is failed over then to let the run terminate.
        assert health[1]["status"] == "inlined"

    def test_replaying_dead_letters_restores_one_sidedness(self, stream):
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            stall_timeout=1.0,
            slots=2,
            load_shed=True,
            fault_plan=FaultPlan(worker_hang={1: 2}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream, 1_000))
        assert runtime.shed_chunks >= 1
        for letter in runtime.dead_letters.letters:
            runtime.supervisor.group.process_batch(letter.payload)
        for key, count in stream.exact.top_k(50):
            assert runtime.supervisor.query(int(key)) >= count

    def test_shed_counter_recorded(self, stream):
        registry = install_registry()
        try:
            runtime = ParallelIngestRuntime(
                2,
                shards=2,
                sync_every=2,
                stall_timeout=1.0,
                slots=2,
                load_shed=True,
                fault_plan=FaultPlan(worker_hang={1: 2}),
                **GROUP_PARAMS,
            )
            runtime.run(chunks_of(stream, 1_000))
            assert (
                registry.value("load_shed_chunks_total", worker="1") >= 1
            )
        finally:
            uninstall_registry()


class TestWorkerQuarantine:
    def test_poison_chunk_quarantines_instead_of_killing(self, stream):
        # The fault swaps worker 1's share of its 3rd local chunk to a
        # float payload inside the process; the worker must quarantine
        # it and keep ingesting (the single-process ResilientEngine
        # semantics), not die.
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            fault_plan=FaultPlan(worker_poison={1: 3}),
            **GROUP_PARAMS,
        )
        stats = runtime.run(chunks_of(stream))
        assert stats.chunks_ingested == len(chunks_of(stream))
        assert runtime.quarantined_count == 1
        health = {h["worker"]: h for h in runtime.worker_health()}
        assert health[1]["status"] == "ok"
        assert health[1]["quarantined"] == 1
        # The parent kept the pristine int64 payload in its dead-letter
        # queue (recovered from the retained tail).
        letters = runtime.dead_letters.letters
        assert len(letters) == 1
        assert letters[0].payload is not None
        assert letters[0].payload.dtype == np.int64
        assert "worker 1" in letters[0].reason
        assert runtime.health()["status"] == "degraded"

    def test_estimates_one_sided_excluding_quarantined(self, stream):
        from collections import Counter

        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            fault_plan=FaultPlan(worker_poison={1: 3}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        letters = runtime.dead_letters.letters
        assert len(letters) == 1
        ingested = Counter(int(k) for k in stream.keys)
        ingested.subtract(int(k) for k in letters[0].payload)
        for key, count in ingested.most_common(50):
            assert runtime.supervisor.query(key) >= count

    def test_replaying_quarantined_payload_covers_full_stream(self, stream):
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            fault_plan=FaultPlan(worker_poison={1: 3}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        for letter in runtime.dead_letters.letters:
            runtime.supervisor.group.process_batch(letter.payload)
        for key, count in stream.exact.top_k(50):
            assert runtime.supervisor.query(int(key)) >= count


class TestTransientRingFaults:
    def test_transient_errors_retried_inside_worker(self, stream):
        sequential = sequential_group(stream, shards=2)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            fault_plan=FaultPlan(worker_transient={0: {1: 2}, 1: {0: 1}}),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        assert runtime.supervisor.group.state().equals(sequential.state())
        assert all(h["status"] == "ok" for h in runtime.worker_health())


class TestSnapshotCorruption:
    def test_corrupt_snapshot_rejected_not_adopted(self, stream):
        # The worker corrupts its first snapshot after computing the
        # digest; the parent must reject it (keeping the retained tail)
        # and the run must still end bit-identical via later snapshots.
        sequential = sequential_group(stream, shards=2)
        registry = install_registry()
        try:
            runtime = ParallelIngestRuntime(
                2,
                shards=2,
                sync_every=2,
                fault_plan=FaultPlan(corrupt_snapshot={1: 1}),
                **GROUP_PARAMS,
            )
            runtime.run(chunks_of(stream))
            health = {h["worker"]: h for h in runtime.worker_health()}
            assert health[1]["snapshot_rejects"] == 1
            assert (
                registry.value(
                    "parallel_snapshot_rejects_total", worker="1"
                )
                == 1
            )
            assert runtime.supervisor.group.state().equals(
                sequential.state()
            )
        finally:
            uninstall_registry()

    def test_corrupt_snapshot_then_crash_replays_longer_tail(self, stream):
        # The only snapshot before the crash was rejected, so failover
        # must rebuild from nothing + the full retained tail.
        sequential = sequential_group(stream, shards=2)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=3,
            respawn=True,
            fault_plan=FaultPlan(
                corrupt_snapshot={1: 1}, worker_crash={1: 4}
            ),
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        assert runtime.respawn_count == 1
        assert runtime.supervisor.group.state().equals(sequential.state())


class TestReshard:
    def test_mid_run_reshard_is_bit_identical(self, stream):
        sequential = sequential_group(stream, shards=4)
        runtime = ParallelIngestRuntime(
            2, shards=4, sync_every=2, **GROUP_PARAMS
        )
        all_chunks = chunks_of(stream)
        moved = []

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 4:
                    moved.append(runtime.reshard({1: 0, 3: 0}))
                yield chunk

        runtime.run(driven())
        assert moved == [2]
        assert runtime.migrations == 2
        assert runtime.shards_of(0) == [0, 1, 2, 3]
        assert runtime.shards_of(1) == []
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_reshard_back_and_forth(self, stream):
        sequential = sequential_group(stream, shards=4, chunk_size=2_000)
        runtime = ParallelIngestRuntime(
            2, shards=4, sync_every=2, **GROUP_PARAMS
        )
        all_chunks = chunks_of(stream, 2_000)

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 3:
                    runtime.reshard({1: 0})
                if index == 9:
                    runtime.reshard({1: 1})
                yield chunk

        runtime.run(driven())
        assert runtime.migrations == 2
        assert runtime.shards_of(1) == [1, 3]
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_reshard_validation(self, stream):
        runtime = ParallelIngestRuntime(2, shards=4, **GROUP_PARAMS)
        with pytest.raises(ConfigurationError, match="running fleet"):
            runtime.reshard({1: 0})
        all_chunks = chunks_of(stream)

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 2:
                    with pytest.raises(ConfigurationError, match="range"):
                        runtime.reshard({9: 0})
                    with pytest.raises(ConfigurationError, match="range"):
                        runtime.reshard({1: 7})
                    assert runtime.reshard({0: 0}) == 0  # no-op move
                yield chunk

        runtime.run(driven())

    def test_migration_counter_and_assignment(self, stream):
        registry = install_registry()
        try:
            runtime = ParallelIngestRuntime(
                2, shards=4, sync_every=2, **GROUP_PARAMS
            )
            all_chunks = chunks_of(stream)

            def driven():
                for index, chunk in enumerate(all_chunks):
                    if index == 4:
                        runtime.reshard({3: 0})
                    yield chunk

            runtime.run(driven())
            assert registry.value("reshard_migrations_total", shard="3") == 1
        finally:
            uninstall_registry()

    def test_source_crash_after_migration_no_double_count(self, stream):
        # The migrated shard's mass lives on the destination; the
        # source's later death replays only its remaining shards —
        # if the commit protocol leaked the moved shard into the
        # source's snapshot the merge would double-count it.
        sequential = sequential_group(stream, shards=4, chunk_size=1_000)
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            sync_every=2,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={1: 12}),
            **GROUP_PARAMS,
        )
        all_chunks = chunks_of(stream, 1_000)

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 8:
                    runtime.reshard({1: 0})
                yield chunk

        runtime.run(driven())
        assert runtime.migrations == 1
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_destination_crash_after_adoption_keeps_shard(self, stream):
        # The destination dies after adopting the migrated shard; its
        # recovery (from the adoption snapshot + retained tail) must
        # still carry the shard — neither lost nor double-counted.
        sequential = sequential_group(stream, shards=4, chunk_size=1_000)
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            sync_every=2,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={0: 12}),
            **GROUP_PARAMS,
        )
        all_chunks = chunks_of(stream, 1_000)

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 8:
                    runtime.reshard({1: 0})
                yield chunk

        runtime.run(driven())
        assert runtime.migrations == 1
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_reshard_onto_inlined_worker(self, stream):
        # An inlined worker keeps exact in-parent state: it can still
        # receive shards.
        sequential = sequential_group(stream, shards=4, chunk_size=1_000)
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            sync_every=2,
            fault_plan=FaultPlan(worker_crash={0: 2}),
            **GROUP_PARAMS,
        )
        all_chunks = chunks_of(stream, 1_000)

        def driven():
            for index, chunk in enumerate(all_chunks):
                if index == 10:
                    assert runtime.reshard({1: 0}) == 1
                yield chunk

        runtime.run(driven())
        health = {h["worker"]: h for h in runtime.worker_health()}
        assert health[0]["status"] == "inlined"
        assert runtime.supervisor.group.state().equals(sequential.state())


class TestAutoReshard:
    def test_skewed_stream_triggers_online_migration(self):
        # A hot-key stream concentrates routed load on one worker; the
        # controller must move a shard off it while ingest continues,
        # and the result must stay bit-identical.
        rng = np.random.default_rng(5)
        keys = (rng.zipf(2.5, size=60_000) % 50).astype(np.int64)
        all_chunks = [keys[i : i + 1_000] for i in range(0, len(keys), 1_000)]
        sequential = ShardedASketch(4, **GROUP_PARAMS)
        StreamEngine(sequential, batched=True).run(all_chunks)
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            sync_every=2,
            auto_reshard=True,
            reshard_min_window_items=4_000,
            reshard_skew_threshold=1.2,
            **GROUP_PARAMS,
        )
        stats = runtime.run(iter(all_chunks))
        assert stats.tuples_ingested == len(keys)
        assert runtime.migrations >= 1
        assert runtime.reshard_controller is not None
        assert runtime.reshard_controller.migration_count >= 1
        assert runtime.supervisor.group.state().equals(sequential.state())

    def test_balanced_stream_never_reshards(self, stream):
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            auto_reshard=True,
            reshard_min_window_items=4_000,
            reshard_skew_threshold=3.0,
            **GROUP_PARAMS,
        )
        runtime.run(chunks_of(stream))
        assert runtime.migrations == 0


class TestFleetHealth:
    def test_health_extra_journaled_with_checkpoints(self, stream, tmp_path):
        store = CheckpointStore(tmp_path)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=2,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={1: 2}),
            **GROUP_PARAMS,
        )
        runtime.run(
            chunks_of(stream), checkpoint_store=store, checkpoint_every=4
        )
        _, record = store.load_latest()
        extra = record["extra"]
        assert extra["worker_respawns"] == 1
        assert extra["reshard_migrations"] == 0
        assert extra["load_shed_chunks"] == 0

    def test_health_report_shape(self, stream):
        runtime = ParallelIngestRuntime(2, shards=2, **GROUP_PARAMS)
        runtime.run(chunks_of(stream))
        health = runtime.health()
        assert health["status"] == "ok"
        assert health["worker_respawns"] == 0
        assert len(health["workers"]) == 2
        assert all("respawns" in row for row in health["workers"])
