"""Property-based tests for the hierarchical (dyadic) Count-Min."""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketches.hierarchical import HierarchicalCountMin

DOMAIN_BITS = 8  # 256 keys: small enough for brute-force comparison

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=(1 << DOMAIN_BITS) - 1),
    min_size=1,
    max_size=300,
)
seeds = st.integers(min_value=0, max_value=30)


def build(keys: list[int], seed: int) -> HierarchicalCountMin:
    hierarchy = HierarchicalCountMin(
        DOMAIN_BITS, total_bytes=32 * 1024, num_hashes=3, seed=seed
    )
    hierarchy.update_batch(np.array(keys, dtype=np.int64))
    return hierarchy


class TestRangeProperties:
    @given(
        keys=keys_strategy,
        seed=seeds,
        bounds=st.tuples(
            st.integers(min_value=0, max_value=255),
            st.integers(min_value=0, max_value=255),
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_one_sided_vs_brute_force(self, keys, seed, bounds):
        low, high = min(bounds), max(bounds)
        hierarchy = build(keys, seed)
        truth = Counter(keys)
        true_range = sum(
            count for key, count in truth.items() if low <= key <= high
        )
        assert hierarchy.range_count(low, high) >= true_range

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_full_domain_range_covers_total(self, keys, seed):
        hierarchy = build(keys, seed)
        assert hierarchy.range_count(0, 255) >= len(keys)

    @given(
        keys=keys_strategy,
        seed=seeds,
        split=st.integers(min_value=0, max_value=254),
    )
    @settings(max_examples=40, deadline=None)
    def test_adjacent_ranges_cover_union(self, keys, seed, split):
        """[0,s] + [s+1,255] is a one-sided estimate of the whole."""
        hierarchy = build(keys, seed)
        left = hierarchy.range_count(0, split)
        right = hierarchy.range_count(split + 1, 255)
        assert left + right >= len(keys)


class TestHeavyHitterProperties:
    @given(keys=keys_strategy, seed=seeds,
           threshold=st.integers(min_value=1, max_value=50))
    @settings(max_examples=60, deadline=None)
    def test_complete_recall(self, keys, seed, threshold):
        """No key at/above the threshold is ever missed."""
        hierarchy = build(keys, seed)
        reported = {key for key, _ in hierarchy.heavy_hitters(threshold)}
        truth = Counter(keys)
        for key, count in truth.items():
            if count >= threshold:
                assert key in reported

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_point_estimates_one_sided(self, keys, seed):
        hierarchy = build(keys, seed)
        truth = Counter(keys)
        for key, count in truth.items():
            assert hierarchy.estimate(key) >= count
