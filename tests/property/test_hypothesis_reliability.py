"""Property-based tests for exact crash recovery (hypothesis).

The central reliability invariant: for ANY stream, ANY chunk size, ANY
checkpoint cadence and ANY crash position, killing the engine at a
chunk boundary and resuming from the newest checkpoint yields a
synopsis bit-identical (state and queries) to an uninterrupted run.
"""

from __future__ import annotations

import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asketch import ASketch
from repro.runtime.reliability import (
    FaultPlan,
    ResilientEngine,
    SimulatedCrash,
)

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=150
)


def build(seed: int) -> ASketch:
    return ASketch(total_bytes=2_048, filter_items=4, seed=seed)


def chunked(keys: list[int], chunk_size: int) -> list[list[int]]:
    return [
        keys[start : start + chunk_size]
        for start in range(0, len(keys), chunk_size)
    ]


class TestCrashRecoveryInvariant:
    @given(
        keys=keys_strategy,
        chunk_size=st.integers(min_value=1, max_value=9),
        checkpoint_every=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10),
        data=st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_resume_equals_uninterrupted_run(
        self, keys, chunk_size, checkpoint_every, seed, data
    ):
        chunks = chunked(keys, chunk_size)
        # Crash anywhere, including past the end (no crash fires) and at
        # chunk 0 (nothing ingested, store empty, full restart).
        crash_at = data.draw(
            st.integers(min_value=0, max_value=len(chunks)),
            label="crash_at_chunk",
        )

        reference = build(seed)
        ResilientEngine(reference).run(chunks)

        with tempfile.TemporaryDirectory() as directory:
            engine = ResilientEngine(
                build(seed),
                checkpoint_dir=directory,
                checkpoint_every=checkpoint_every,
            )
            try:
                engine.run(
                    chunks, fault_plan=FaultPlan(crash_at_chunk=crash_at)
                )
                crashed = False
            except SimulatedCrash:
                crashed = True
            assert crashed == (crash_at < len(chunks))

            recovered = ResilientEngine(
                build(seed),
                checkpoint_dir=directory,
                checkpoint_every=checkpoint_every,
            )
            stats = recovered.resume(chunks)

            assert stats.tuples_ingested == len(keys)
            assert recovered.synopsis.state().equals(reference.state())
            for key in set(keys):
                assert recovered.synopsis.query(key) == reference.query(key)

    @given(
        keys=keys_strategy,
        chunk_size=st.integers(min_value=1, max_value=9),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_double_crash_still_recovers(self, keys, chunk_size, seed):
        """Crash, resume, crash again mid-replay, resume again."""
        chunks = chunked(keys, chunk_size)
        reference = build(seed)
        ResilientEngine(reference).run(chunks)

        first = max(0, len(chunks) - 1)
        second = len(chunks)  # past the end: the re-resume finishes
        with tempfile.TemporaryDirectory() as directory:
            engine = ResilientEngine(
                build(seed), checkpoint_dir=directory, checkpoint_every=2
            )
            try:
                engine.run(chunks, fault_plan=FaultPlan(crash_at_chunk=first))
            except SimulatedCrash:
                pass
            middle = ResilientEngine(
                build(seed), checkpoint_dir=directory, checkpoint_every=2
            )
            try:
                middle.resume(
                    chunks, fault_plan=FaultPlan(crash_at_chunk=second)
                )
            except SimulatedCrash:
                pass
            final = ResilientEngine(
                build(seed), checkpoint_dir=directory, checkpoint_every=2
            )
            final.resume(chunks)
            assert final.synopsis.state().equals(reference.state())
