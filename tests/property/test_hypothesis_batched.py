"""Property-based tests: batched ingest vs the scalar reference path."""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asketch import ASketch
from repro.sketches.count_min import CountMinSketch

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=200), min_size=1, max_size=400
)
filter_kinds = st.sampled_from(
    ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
)
seeds = st.integers(min_value=0, max_value=30)
chunk_sizes = st.integers(min_value=1, max_value=64)


def build(seed: int, kind: str, filter_items: int = 4) -> ASketch:
    sketch = CountMinSketch(num_hashes=3, row_width=19, seed=seed)
    return ASketch(sketch=sketch, filter_items=filter_items, filter_kind=kind)


def full_state(asketch: ASketch):
    return (
        {
            entry.key: (entry.new_count, entry.old_count)
            for entry in asketch.filter.entries()
        },
        asketch.sketch.table.tolist(),
        asketch.total_mass,
        asketch.overflow_mass,
        asketch.miss_events,
        asketch.exchange_count,
    )


class TestBatchedEquivalence:
    @given(keys=keys_strategy, kind=filter_kinds, seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_single_tuple_chunks_replicate_scalar(self, keys, kind, seed):
        """process_batch ≡ process_stream on random unit streams when
        chunks cannot reorder exchanges (one tuple per chunk): identical
        filter, sketch cells, bookkeeping and estimates."""
        stream = np.array(keys, dtype=np.int64)
        scalar = build(seed, kind)
        batched = build(seed, kind)
        scalar.process_stream(stream)
        for index in range(stream.shape[0]):
            batched.process_batch(stream[index : index + 1])
        assert full_state(scalar) == full_state(batched)
        probes = sorted(set(keys))
        assert scalar.query_batch(probes) == batched.query_batch(probes)

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=400
        ),
        kind=filter_kinds,
        seed=seeds,
        chunk_size=chunk_sizes,
    )
    @settings(max_examples=50, deadline=None)
    def test_any_chunking_identical_without_overflow(
        self, keys, kind, seed, chunk_size
    ):
        """With at most |F| distinct keys the sketch is never touched, so
        every chunking must produce the identical end state."""
        stream = np.array(keys, dtype=np.int64)
        scalar = build(seed, kind)
        batched = build(seed, kind)
        scalar.process_stream(stream)
        for start in range(0, stream.shape[0], chunk_size):
            batched.process_batch(stream[start : start + chunk_size])
        assert batched.miss_events == 0
        assert full_state(scalar) == full_state(batched)

    @given(
        keys=keys_strategy, kind=filter_kinds, seed=seeds,
        chunk_size=chunk_sizes,
    )
    @settings(max_examples=50, deadline=None)
    def test_chunked_ingest_stays_one_sided(
        self, keys, kind, seed, chunk_size
    ):
        """The paper's central invariant survives any chunk size, even
        when chunking reorders exchanges relative to the scalar run."""
        stream = np.array(keys, dtype=np.int64)
        asketch = build(seed, kind)
        for start in range(0, stream.shape[0], chunk_size):
            asketch.process_batch(stream[start : start + chunk_size])
        truth = Counter(keys)
        for key, count in truth.items():
            assert asketch.query(key) >= count
        # Mass conservation: resident + hashed mass covers the stream.
        resident = sum(
            entry.resident_count for entry in asketch.filter.entries()
        )
        assert resident + int(asketch.sketch.table[0].sum()) == len(keys)

    @given(keys=keys_strategy, kind=filter_kinds, seed=seeds,
           chunk_size=chunk_sizes)
    @settings(max_examples=40, deadline=None)
    def test_query_batch_matches_scalar_queries(
        self, keys, kind, seed, chunk_size
    ):
        stream = np.array(keys, dtype=np.int64)
        asketch = build(seed, kind)
        for start in range(0, stream.shape[0], chunk_size):
            asketch.process_batch(stream[start : start + chunk_size])
        probes = sorted(set(keys)) + [999]
        assert asketch.query_batch(probes) == [
            asketch.query(key) for key in probes
        ]
