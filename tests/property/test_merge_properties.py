"""Property-based tests for synopsis merging (hypothesis).

The merge leg of the synopsis protocol makes three promises, checked
here over randomly generated streams and split points:

* **linearity** — for linear sketches, merging sketches of two stream
  halves produces the exact table of one sketch over the whole stream;
* **commutativity** — ``a.merge(b)`` and ``b.merge(a)`` answer queries
  identically;
* **guarantee preservation** — one-sided structures (Count-Min,
  ASketch, SF-sketch, SALSA, Space Saving's min mode) stay one-sided
  after a merge, and Misra-Gries stays a valid undercount within its
  decrement budget — and adaptive filter resizes mid-stream never break
  the one-sided guarantee either.
"""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asketch import ASketch
from repro.counters.misra_gries import MisraGries
from repro.counters.space_saving import SpaceSaving
from repro.runtime.adaptive import AdaptiveController
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.hierarchical import HierarchicalCountMin
from repro.sketches.salsa import SalsaCountMin
from repro.sketches.sf_sketch import SFSketch

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=500), min_size=2, max_size=300
)
seeds = st.integers(min_value=0, max_value=50)
splits = st.floats(min_value=0.1, max_value=0.9)


def _halves(keys: list[int], split: float) -> tuple[np.ndarray, np.ndarray]:
    cut = max(1, min(len(keys) - 1, int(len(keys) * split)))
    array = np.array(keys, dtype=np.int64)
    return array[:cut], array[cut:]


class TestLinearMergeEqualsWholeStream:
    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=40, deadline=None)
    def test_count_min(self, keys, seed, split):
        first, second = _halves(keys, split)
        left = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        right = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        whole = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        left.update_batch(first)
        right.update_batch(second)
        whole.update_batch(np.array(keys, dtype=np.int64))
        left.merge(right)
        np.testing.assert_array_equal(left.table, whole.table)

    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=40, deadline=None)
    def test_count_sketch(self, keys, seed, split):
        first, second = _halves(keys, split)
        left = CountSketch(num_hashes=3, row_width=31, seed=seed)
        right = CountSketch(num_hashes=3, row_width=31, seed=seed)
        whole = CountSketch(num_hashes=3, row_width=31, seed=seed)
        left.update_batch(first)
        right.update_batch(second)
        whole.update_batch(np.array(keys, dtype=np.int64))
        left.merge(right)
        np.testing.assert_array_equal(left._table, whole._table)

    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=20, deadline=None)
    def test_hierarchical(self, keys, seed, split):
        first, second = _halves(keys, split)
        build = lambda: HierarchicalCountMin(  # noqa: E731
            9, total_bytes=16 * 1024, num_hashes=3, seed=seed
        )
        left, right, whole = build(), build(), build()
        left.update_batch(first % 512)
        right.update_batch(second % 512)
        whole.update_batch(np.array(keys, dtype=np.int64) % 512)
        left.merge(right)
        assert left.total == whole.total
        for low, high in [(0, 511), (17, 200), (300, 450)]:
            assert left.range_count(low, high) == whole.range_count(low, high)


class TestCommutativity:
    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=30, deadline=None)
    def test_count_min_merge_commutes(self, keys, seed, split):
        first, second = _halves(keys, split)
        ab = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        ba = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        other_for_ab = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        other_for_ba = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        ab.update_batch(first)
        other_for_ab.update_batch(second)
        ba.update_batch(second)
        other_for_ba.update_batch(first)
        ab.merge(other_for_ab)
        ba.merge(other_for_ba)
        np.testing.assert_array_equal(ab.table, ba.table)

    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=25, deadline=None)
    def test_sf_sketch_merge_commutes(self, keys, seed, split):
        """SF merges cell-wise in both stages, so direction is moot."""
        first, second = _halves(keys, split)
        build = lambda: SFSketch(  # noqa: E731
            num_hashes=3, row_width=37, fat_ratio=2, seed=seed
        )
        ab, ba = build(), build()
        other_ab, other_ba = build(), build()
        ab.update_batch(first)
        other_ab.update_batch(second)
        ba.update_batch(second)
        other_ba.update_batch(first)
        ab.merge(other_ab)
        ba.merge(other_ba)
        assert ab.state().equals(ba.state())

    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=25, deadline=None)
    def test_salsa_merge_commutes(self, keys, seed, split):
        """Partition join + summed sub-segments is order-independent."""
        first, second = _halves(keys, split)
        build = lambda: SalsaCountMin(  # noqa: E731
            num_hashes=3, num_slots=64, seed=seed
        )
        ab, ba = build(), build()
        other_ab, other_ba = build(), build()
        ab.update_batch(first)
        other_ab.update_batch(second)
        ba.update_batch(second)
        other_ba.update_batch(first)
        ab.merge(other_ab)
        ba.merge(other_ba)
        np.testing.assert_array_equal(ab._values, ba._values)
        np.testing.assert_array_equal(ab._seg_log, ba._seg_log)

    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=15, deadline=None)
    def test_asketch_merge_estimates_commute(self, keys, seed, split):
        """Merged estimates agree regardless of merge direction.

        The filter contents may differ (eviction order is direction
        dependent) but filter + sketch always answer identically for
        monitored keys and one-sidedly for the rest; we check the
        point estimates that both orders must agree on: total mass.
        """
        first, second = _halves(keys, split)
        build = lambda: ASketch(  # noqa: E731
            total_bytes=4 * 1024, filter_items=4, seed=seed
        )
        ab, ba = build(), build()
        other_ab, other_ba = build(), build()
        ab.process_stream(first)
        other_ab.process_stream(second)
        ba.process_stream(second)
        other_ba.process_stream(first)
        ab.merge(other_ab)
        ba.merge(other_ba)
        assert ab.total_mass == ba.total_mass == len(keys)


class TestGuaranteePreservation:
    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=25, deadline=None)
    def test_asketch_one_sided_after_merge(self, keys, seed, split):
        first, second = _halves(keys, split)
        left = ASketch(total_bytes=4 * 1024, filter_items=4, seed=seed)
        right = ASketch(total_bytes=4 * 1024, filter_items=4, seed=seed)
        left.process_stream(first)
        right.process_stream(second)
        left.merge(right)
        truth = Counter(keys)
        for key, count in truth.items():
            assert left.query(key) >= count

    @given(keys=keys_strategy, split=splits)
    @settings(max_examples=25, deadline=None)
    def test_space_saving_stays_one_sided(self, keys, split):
        first, second = _halves(keys, split)
        left = SpaceSaving(capacity=8)
        right = SpaceSaving(capacity=8)
        for key in first.tolist():
            left.update(key)
        for key in second.tolist():
            right.update(key)
        left.merge(right)
        truth = Counter(keys)
        for key, count in truth.items():
            assert left.estimate(key) >= count
        # Lower bounds stay valid too: count - error <= true count.
        for key in truth:
            guaranteed = left.guaranteed_count(key)
            if guaranteed is not None:
                assert guaranteed <= truth[key]

    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=25, deadline=None)
    def test_sf_sketch_one_sided_after_merge(self, keys, seed, split):
        first, second = _halves(keys, split)
        left = SFSketch(num_hashes=3, row_width=37, fat_ratio=2, seed=seed)
        right = SFSketch(num_hashes=3, row_width=37, fat_ratio=2, seed=seed)
        left.update_batch(first)
        right.update_batch(second)
        left.merge(right)
        truth = Counter(keys)
        for key, count in truth.items():
            assert left.estimate(key) >= count

    @given(keys=keys_strategy, seed=seeds, split=splits)
    @settings(max_examples=25, deadline=None)
    def test_salsa_one_sided_after_merge(self, keys, seed, split):
        first, second = _halves(keys, split)
        left = SalsaCountMin(num_hashes=3, num_slots=64, seed=seed)
        right = SalsaCountMin(num_hashes=3, num_slots=64, seed=seed)
        left.update_batch(first)
        right.update_batch(second)
        left.merge(right)
        truth = Counter(keys)
        for key, count in truth.items():
            assert left.estimate(key) >= count

    @given(keys=keys_strategy, split=splits)
    @settings(max_examples=25, deadline=None)
    def test_misra_gries_undercount_within_budget(self, keys, split):
        first, second = _halves(keys, split)
        left = MisraGries(capacity=8)
        right = MisraGries(capacity=8)
        for key in first.tolist():
            left.update(key)
        for key in second.tolist():
            right.update(key)
        left.merge(right)
        truth = Counter(keys)
        for key, count in left.items():
            assert count <= truth[key]
            assert count >= truth[key] - left.total_decrements


class TestAdaptationPreservesGuarantees:
    """Filter resizes mid-stream (the adaptive controller's only
    mutation) never break the one-sided estimate guarantee, for any
    interleaving of ingest chunks and grow/shrink steps."""

    @given(
        keys=keys_strategy,
        seed=seeds,
        sizes=st.lists(
            st.integers(min_value=1, max_value=64), min_size=1, max_size=5
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_resize_schedule_stays_one_sided(self, keys, seed, sizes):
        asketch = ASketch(total_bytes=4 * 1024, filter_items=4, seed=seed)
        array = np.array(keys, dtype=np.int64)
        chunks = np.array_split(array, len(sizes))
        for chunk, new_items in zip(chunks, sizes):
            if chunk.size:
                asketch.process_stream(chunk)
            asketch.resize_filter(new_items)
        truth = Counter(keys)
        for key, count in truth.items():
            assert asketch.query(key) >= count
        assert asketch.total_mass == len(keys)

    @given(
        keys=keys_strategy,
        seed=seeds,
        drift=st.integers(min_value=1, max_value=1_000_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_controller_driven_adaptation_stays_one_sided(
        self, keys, seed, drift
    ):
        """End-to-end: a rotating stream through the real controller."""
        asketch = ASketch(total_bytes=4 * 1024, filter_items=4, seed=seed)
        controller = AdaptiveController(
            asketch,
            min_window_items=8,
            cooldown_windows=0,
            min_filter_items=2,
            max_filter_items=64,
        )
        array = np.array(keys, dtype=np.int64)
        rotated = array + drift
        position = 0
        for chunk in (array, rotated):
            for offset in range(0, chunk.shape[0], 32):
                asketch.process_batch(chunk[offset : offset + 32])
                position += min(32, chunk.shape[0] - offset)
                controller(position)
        truth = Counter(array.tolist()) + Counter(rotated.tolist())
        for key, count in truth.items():
            assert asketch.query(int(key)) >= count
