"""Property-based tests for the filter implementations (hypothesis)."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.filters.factory import FILTER_KINDS, make_filter

ALL_KINDS = sorted(FILTER_KINDS)

#: A random ASketch-like driving sequence: (key, amount, estimate).
operations = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=500),
    ),
    min_size=1,
    max_size=400,
)


class ReferenceFilter:
    """Trivially-correct dict model of the filter semantics."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.state: dict[int, tuple[int, int]] = {}

    def add_if_present(self, key, amount):
        if key in self.state:
            new, old = self.state[key]
            self.state[key] = (new + amount, old)
            return True
        return False

    @property
    def is_full(self):
        return len(self.state) >= self.capacity

    def insert(self, key, new, old):
        self.state[key] = (new, old)

    def min_new_count(self):
        return min(new for new, _ in self.state.values())

    def evict_a_min(self, key, new, old):
        """Remove one minimum entry (any of the tied ones) and insert."""
        minimum = self.min_new_count()
        candidates = {
            k for k, (n, _) in self.state.items() if n == minimum
        }
        self.state[key] = (new, old)
        return candidates, minimum


def drive(kind: str, capacity: int, ops) -> None:
    """Run the same operation sequence on the real and model filters and
    compare observable state after every step."""
    real = make_filter(kind, capacity)
    model = ReferenceFilter(capacity)
    fresh = 1000
    for key, amount, estimate in ops:
        hit_real = real.add_if_present(key, amount)
        hit_model = model.add_if_present(key, amount)
        assert hit_real == hit_model
        if not hit_real:
            if not real.is_full:
                assert not model.is_full
                real.insert(key, amount, 0)
                model.insert(key, amount, 0)
            else:
                assert real.min_new_count() == model.min_new_count()
                if estimate > real.min_new_count():
                    if key in model.state:
                        # The real filter rejects double-monitoring; use
                        # a fresh key to keep both sides in sync.
                        key = fresh
                        fresh += 1
                    evicted = real.replace_min(key, estimate, estimate)
                    candidates, minimum = model.evict_a_min(
                        key, estimate, estimate
                    )
                    assert evicted.key in candidates
                    assert evicted.new_count == minimum
                    del model.state[evicted.key]
        # Observable state must agree exactly.
        assert len(real) == len(model.state)
        real_state = {
            e.key: (e.new_count, e.old_count) for e in real.entries()
        }
        assert real_state == model.state


class TestFiltersAgainstModel:
    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_vector(self, ops):
        drive("vector", 6, ops)

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_strict_heap(self, ops):
        drive("strict-heap", 6, ops)

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_relaxed_heap(self, ops):
        drive("relaxed-heap", 6, ops)

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_stream_summary(self, ops):
        drive("stream-summary", 6, ops)

    @given(ops=operations, capacity=st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_capacity_sweep_relaxed(self, ops, capacity):
        drive("relaxed-heap", capacity, ops)
