"""Property-based tests for Stream-Summary against a dict model."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters.stream_summary import StreamSummary

#: (op, key, amount) with op in {hit, insert-or-evict, remove}.
operations = st.lists(
    st.tuples(
        st.sampled_from(["touch", "remove"]),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=1, max_value=4),
    ),
    min_size=1,
    max_size=300,
)


class TestAgainstModel:
    @given(ops=operations, capacity=st.integers(min_value=1, max_value=12))
    @settings(max_examples=60, deadline=None)
    def test_counts_and_min_match_model(self, ops, capacity):
        summary = StreamSummary(capacity)
        model: dict[int, int] = {}
        for op, key, amount in ops:
            if op == "touch":
                if key in model:
                    summary.increment(key, amount)
                    model[key] += amount
                elif len(model) < capacity:
                    summary.insert(key, amount)
                    model[key] = amount
                else:
                    evicted_key, evicted_count, _ = summary.evict_min()
                    assert model.pop(evicted_key) == evicted_count
                    assert evicted_count == min(
                        list(model.values()) + [evicted_count]
                    )
                    summary.insert(key, amount)
                    model[key] = amount
            else:  # remove
                if key in model:
                    count, _ = summary.remove(key)
                    assert count == model.pop(key)
            assert len(summary) == len(model)
            if model:
                assert summary.min_count == min(model.values())
                _, observed_min, _ = summary.min_item()
                assert observed_min == min(model.values())
            for key_, count_ in model.items():
                assert summary.count_of(key_) == count_

    @given(ops=operations)
    @settings(max_examples=40, deadline=None)
    def test_items_always_ascending(self, ops):
        summary = StreamSummary(8)
        model: dict[int, int] = {}
        for op, key, amount in ops:
            if op == "remove":
                continue
            if key in model:
                summary.increment(key, amount)
                model[key] += amount
            elif len(model) < 8:
                summary.insert(key, amount)
                model[key] = amount
            counts = [count for _, count, _ in summary.items()]
            assert counts == sorted(counts)
