"""Property-based tests: kernel backends are bit-identical everywhere.

Random streams, filter kinds, sketch geometries, and weighted updates
must produce the exact same end state no matter which compute backend
executed the inner loops.  The python backend interprets the very loop
bodies the numba backend compiles, so passing against numpy here covers
the compiled leg's semantics too.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asketch import ASketch
from repro.kernels import available_backends, use_backend
from repro.sketches.count_min import CountMinSketch

BACKEND_NAMES = [
    name for name in ("python", "numpy", "numba") if name in available_backends()
]

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=120), min_size=1, max_size=300
)
filter_kinds = st.sampled_from(
    ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
)
seeds = st.integers(min_value=0, max_value=30)
chunk_sizes = st.integers(min_value=1, max_value=64)
widths = st.integers(min_value=4, max_value=64)
depths = st.integers(min_value=1, max_value=6)


def build(seed: int, kind: str, filter_items: int = 4) -> ASketch:
    sketch = CountMinSketch(num_hashes=3, row_width=19, seed=seed)
    return ASketch(sketch=sketch, filter_items=filter_items, filter_kind=kind)


def full_state(asketch: ASketch):
    return (
        {
            entry.key: (entry.new_count, entry.old_count)
            for entry in asketch.filter.entries()
        },
        asketch.sketch.table.tolist(),
        asketch.total_mass,
        asketch.overflow_mass,
        asketch.miss_events,
        asketch.exchange_count,
    )


class TestBackendIdentity:
    @given(keys=keys_strategy, kind=filter_kinds, seed=seeds,
           chunk_size=chunk_sizes)
    @settings(max_examples=50, deadline=None)
    def test_ingest_state_identical_across_backends(
        self, keys, kind, seed, chunk_size
    ):
        """Exchange-heavy random streams (tiny filter, many distinct
        keys) leave the identical ASketch state under every backend."""
        stream = np.array(keys, dtype=np.int64)
        states = []
        for name in BACKEND_NAMES:
            with use_backend(name):
                asketch = build(seed, kind)
                for start in range(0, stream.shape[0], chunk_size):
                    asketch.process_batch(stream[start : start + chunk_size])
                states.append(full_state(asketch))
        first = states[0]
        assert all(state == first for state in states[1:])

    @given(
        keys=keys_strategy,
        seed=seeds,
        width=widths,
        depth=depths,
        data=st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_weighted_sketch_updates_identical(
        self, keys, seed, width, depth, data
    ):
        """Fused hash+scatter and hash+gather agree across backends for
        arbitrary sketch geometries and weighted batches."""
        amounts = np.array(
            data.draw(
                st.lists(
                    st.integers(min_value=1, max_value=50),
                    min_size=len(keys),
                    max_size=len(keys),
                )
            ),
            dtype=np.int64,
        )
        stream = np.array(keys, dtype=np.int64)
        tables = []
        estimates = []
        for name in BACKEND_NAMES:
            with use_backend(name):
                sketch = CountMinSketch(
                    num_hashes=depth, row_width=width, seed=seed
                )
                sketch.update_batch_weighted(stream, amounts)
                tables.append(sketch.table.copy())
                estimates.append(list(sketch.estimate_batch(stream)))
        assert all(np.array_equal(tables[0], t) for t in tables[1:])
        assert all(estimates[0] == e for e in estimates[1:])

    @given(keys=keys_strategy, kind=filter_kinds, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_queries_identical_across_backends(self, keys, kind, seed):
        stream = np.array(keys, dtype=np.int64)
        probes = sorted(set(keys)) + [999]
        answers = []
        for name in BACKEND_NAMES:
            with use_backend(name):
                asketch = build(seed, kind)
                asketch.process_batch(stream)
                answers.append(asketch.query_batch(probes))
        assert all(answers[0] == a for a in answers[1:])
