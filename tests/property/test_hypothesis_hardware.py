"""Property-based tests for the hardware models."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cache import SetAssociativeCache
from repro.hardware.costs import CostModel, OpCounters
from repro.hardware.event_pipeline import EventDrivenPipeline
from repro.hardware.pipeline import PipelineSimulator

op_records = st.builds(
    OpCounters,
    items=st.integers(min_value=1, max_value=10_000),
    filter_probes=st.integers(min_value=0, max_value=10_000),
    filter_probe_blocks=st.integers(min_value=0, max_value=20_000),
    hash_evals=st.integers(min_value=0, max_value=80_000),
    sketch_cell_writes=st.integers(min_value=0, max_value=80_000),
    exchanges=st.integers(min_value=0, max_value=1_000),
)


class TestCostModelProperties:
    @given(ops=op_records, extra=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_more_work_never_faster(self, ops, extra):
        model = CostModel()
        heavier = ops.snapshot()
        heavier.hash_evals += extra
        assert model.cycles(heavier, 65536) > model.cycles(ops, 65536)

    @given(ops=op_records)
    @settings(max_examples=60, deadline=None)
    def test_cycles_nonnegative_and_scale_with_items(self, ops):
        model = CostModel()
        assert model.cycles(ops, 65536) >= ops.items * model.cycles_per_item

    @given(ops=op_records)
    @settings(max_examples=40, deadline=None)
    def test_bigger_synopsis_never_faster(self, ops):
        model = CostModel()
        small = model.cycles(ops, 16 * 1024)
        large = model.cycles(ops, 16 * 1024 * 1024)
        assert large >= small


class TestPipelineProperties:
    # Realistic splits: the filter core carries loop + probe work, the
    # sketch core carries hash + cell work (as ASketch.stage_ops emits).
    stage0s = st.builds(
        OpCounters,
        items=st.integers(min_value=1, max_value=5_000),
        filter_probes=st.integers(min_value=0, max_value=10_000),
        filter_probe_blocks=st.integers(min_value=0, max_value=10_000),
        min_scans=st.integers(min_value=0, max_value=10_000),
        heap_fixup_levels=st.integers(min_value=0, max_value=5_000),
    )
    stage1s = st.builds(
        OpCounters,
        hash_evals=st.integers(min_value=0, max_value=40_000),
        sketch_cell_writes=st.integers(min_value=0, max_value=40_000),
        exchanges=st.integers(min_value=0, max_value=1_000),
    )
    @given(stage0=stage0s, stage1=stage1s,
           forwarded=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=60, deadline=None)
    def test_speedup_bounded_by_two_stages(self, stage0, stage1, forwarded):
        """A two-stage pipeline can at most double sequential throughput."""
        simulator = PipelineSimulator()
        result = simulator.run(
            stage0, stage1, stage0.items, forwarded, 0, 128 * 1024
        )
        assert result.speedup <= 2.0 + 1e-9

    @given(stage0=stage0s, stage1=stage1s)
    @settings(max_examples=60, deadline=None)
    def test_pipeline_at_least_slowest_stage(self, stage0, stage1):
        """Pipelining never beats the slowest stage run alone."""
        simulator = PipelineSimulator()
        result = simulator.run(
            stage0, stage1, stage0.items, 0, 0, 128 * 1024
        )
        assert result.throughput_items_per_ms <= (
            simulator.cost_model.clock_hz
            / max(result.stage0_cycles_per_item,
                  result.stage1_cycles_per_item)
            / 1000.0
        ) * (1 + 1e-9)


class TestEventPipelineProperties:
    traces = st.lists(st.booleans(), min_size=1, max_size=300)

    @given(trace=traces, capacity=st.integers(min_value=1, max_value=64))
    @settings(max_examples=60, deadline=None)
    def test_bigger_queue_never_slower(self, trace, capacity):
        array = np.array(trace, dtype=bool)
        tight = EventDrivenPipeline(
            hit_cycles=30, miss_cycles=40, sketch_cycles=300,
            queue_capacity=capacity,
        ).run(array)
        roomy = EventDrivenPipeline(
            hit_cycles=30, miss_cycles=40, sketch_cycles=300,
            queue_capacity=capacity + 64,
        ).run(array)
        assert roomy.total_cycles <= tight.total_cycles + 1e-9

    @given(trace=traces)
    @settings(max_examples=60, deadline=None)
    def test_total_at_least_each_stage_alone(self, trace):
        array = np.array(trace, dtype=bool)
        result = EventDrivenPipeline(
            hit_cycles=30, miss_cycles=40, sketch_cycles=300,
            queue_capacity=1024,
        ).run(array)
        misses = int(array.sum())
        hits = array.size - misses
        stage0 = hits * 30 + misses * 40
        stage1 = misses * 300
        assert result.total_cycles >= max(stage0, stage1) - 1e-9


class TestCacheAgainstReference:
    @given(
        addresses=st.lists(
            st.integers(min_value=0, max_value=4095),
            min_size=1,
            max_size=300,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_fully_associative_case_matches_reference_lru(self, addresses):
        """With one set, the simulator must agree with a textbook LRU."""
        ways = 4
        line = 64
        cache = SetAssociativeCache(
            ways * line, line_bytes=line, ways=ways
        )
        assert cache.n_sets == 1
        reference: list[int] = []  # most-recent first
        expected_hits = 0
        for address in addresses:
            tag = address // line
            if tag in reference:
                expected_hits += 1
                reference.remove(tag)
            reference.insert(0, tag)
            del reference[ways:]
        cache.access_many(np.array(addresses))
        assert cache.stats.hits == expected_hits
