"""Property-based tests for multiprocess-ingest bit-identity.

The runtime's central claim: for ANY stream, ANY worker count, ANY
chunking, ANY snapshot cadence — and even a worker killed mid-stream
under inline failover — the merged parallel result is bit-identical to
a single-process sharded ingest of the same chunks.

Each example spawns real worker processes, so the example budget is
deliberately small and the deadline disabled (process startup is
milliseconds-to-seconds, not microseconds).
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.runtime.engine import StreamEngine
from repro.runtime.parallel import ParallelIngestRuntime, parallel_ingest
from repro.runtime.reliability import FaultPlan
from repro.runtime.sharding import ShardedASketch

GROUP_PARAMS = {"total_bytes": 8 * 1024, "filter_items": 8, "seed": 47}

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=400
)

SLOW = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def chunked(keys: list[int], chunk_size: int) -> list[np.ndarray]:
    array = np.asarray(keys, dtype=np.int64)
    return [
        array[start : start + chunk_size]
        for start in range(0, len(keys), chunk_size)
    ]


def sequential(chunks: list[np.ndarray], shards: int) -> ShardedASketch:
    group = ShardedASketch(shards, **GROUP_PARAMS)
    StreamEngine(group, batched=True).run(chunks)
    return group


class TestParallelBitIdentity:
    @given(
        keys=keys_strategy,
        workers=st.integers(min_value=1, max_value=4),
        extra_shards=st.integers(min_value=0, max_value=3),
        chunk_size=st.integers(min_value=1, max_value=64),
        sync_every=st.integers(min_value=1, max_value=5),
    )
    @SLOW
    def test_merged_equals_single_process(
        self, keys, workers, extra_shards, chunk_size, sync_every
    ):
        shards = workers + extra_shards
        chunks = chunked(keys, chunk_size)
        expected = sequential(chunks, shards)
        supervisor, stats = parallel_ingest(
            iter(chunks),
            workers,
            shards=shards,
            sync_every=sync_every,
            **GROUP_PARAMS,
        )
        assert stats.tuples_ingested == len(keys)
        assert supervisor.group.state().equals(expected.state())

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=40,
            max_size=400,
        ),
        workers=st.integers(min_value=2, max_value=3),
        chunk_size=st.integers(min_value=4, max_value=32),
        sync_every=st.integers(min_value=1, max_value=4),
        crash_worker=st.integers(min_value=0, max_value=2),
        crash_after=st.integers(min_value=0, max_value=6),
    )
    @SLOW
    def test_mid_stream_crash_is_invisible_inline(
        self, keys, workers, chunk_size, sync_every, crash_worker, crash_after
    ):
        # A worker killed with os._exit after an arbitrary number of
        # chunks — possibly before its first snapshot — must not change
        # the merged result under inline failover.
        chunks = chunked(keys, chunk_size)
        expected = sequential(chunks, workers)
        supervisor, stats = parallel_ingest(
            iter(chunks),
            workers,
            shards=workers,
            sync_every=sync_every,
            inject_crash={crash_worker % workers: crash_after},
            **GROUP_PARAMS,
        )
        assert stats.tuples_ingested == len(keys)
        assert supervisor.group.state().equals(expected.state())


class TestSelfHealingBitIdentity:
    """Recovery idempotence: random kill/respawn/reshard schedules
    interleaved with ingest leave the merged state bit-identical to
    the no-fault single-process run."""

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=60,
            max_size=400,
        ),
        chunk_size=st.integers(min_value=4, max_value=32),
        sync_every=st.integers(min_value=1, max_value=4),
        crash_worker=st.integers(min_value=0, max_value=1),
        crash_after=st.integers(min_value=0, max_value=8),
        second_crash_after=st.integers(min_value=0, max_value=8),
    )
    @SLOW
    def test_random_kills_respawn_exactly(
        self,
        keys,
        chunk_size,
        sync_every,
        crash_worker,
        crash_after,
        second_crash_after,
    ):
        chunks = chunked(keys, chunk_size)
        expected = sequential(chunks, 2)
        runtime = ParallelIngestRuntime(
            2,
            shards=2,
            sync_every=sync_every,
            respawn=True,
            fault_plan=FaultPlan(
                worker_crash={crash_worker: crash_after},
                worker_exit={1 - crash_worker: second_crash_after},
            ),
            **GROUP_PARAMS,
        )
        stats = runtime.run(iter(chunks))
        assert stats.tuples_ingested == len(keys)
        assert runtime.supervisor.group.state().equals(expected.state())

    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=500),
            min_size=60,
            max_size=400,
        ),
        chunk_size=st.integers(min_value=4, max_value=32),
        sync_every=st.integers(min_value=1, max_value=4),
        moves=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=12),  # at chunk
                st.integers(min_value=0, max_value=3),  # shard
                st.integers(min_value=0, max_value=1),  # destination
            ),
            min_size=1,
            max_size=3,
        ),
        crash_after=st.integers(min_value=0, max_value=10),
    )
    @SLOW
    def test_random_reshard_schedules_with_a_kill(
        self, keys, chunk_size, sync_every, moves, crash_after
    ):
        chunks = chunked(keys, chunk_size)
        expected = sequential(chunks, 4)
        runtime = ParallelIngestRuntime(
            2,
            shards=4,
            sync_every=sync_every,
            respawn=True,
            fault_plan=FaultPlan(worker_crash={1: crash_after}),
            **GROUP_PARAMS,
        )
        schedule: dict[int, list[tuple[int, int]]] = {}
        for at_chunk, shard, destination in moves:
            schedule.setdefault(at_chunk, []).append((shard, destination))

        def driven():
            for index, chunk in enumerate(chunks):
                for shard, destination in schedule.get(index, []):
                    runtime.reshard({shard: destination})
                yield chunk

        stats = runtime.run(driven())
        assert stats.tuples_ingested == len(keys)
        assert runtime.supervisor.group.state().equals(expected.state())
