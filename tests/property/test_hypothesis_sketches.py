"""Property-based tests for the sketch synopses (hypothesis)."""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.counters.exact import ExactCounter
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.fcm import FrequencyAwareCountMin

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=500), min_size=1, max_size=300
)
seeds = st.integers(min_value=0, max_value=50)


class TestCountMinProperties:
    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_one_sided_overestimate(self, keys, seed):
        sketch = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        truth = Counter()
        for key in keys:
            sketch.update(key)
            truth[key] += 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_total_mass_conserved_per_row(self, keys, seed):
        sketch = CountMinSketch(num_hashes=4, row_width=53, seed=seed)
        sketch.update_batch(np.array(keys))
        for row in range(4):
            assert int(sketch.table[row].sum()) == len(keys)

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_scalar(self, keys, seed):
        batched = CountMinSketch(num_hashes=3, row_width=41, seed=seed)
        batched.update_batch(np.array(keys))
        looped = CountMinSketch(num_hashes=3, row_width=41, seed=seed)
        for key in keys:
            looped.update(key)
        np.testing.assert_array_equal(batched.table, looped.table)

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_conservative_between_truth_and_classic(self, keys, seed):
        classic = CountMinSketch(num_hashes=3, row_width=29, seed=seed)
        conservative = CountMinSketch(
            num_hashes=3, row_width=29, seed=seed, conservative=True
        )
        truth = Counter()
        for key in keys:
            classic.update(key)
            conservative.update(key)
            truth[key] += 1
        for key, count in truth.items():
            assert count <= conservative.estimate(key) <= classic.estimate(key)

    @given(
        keys=keys_strategy,
        deletions=st.lists(
            st.integers(min_value=0, max_value=500), max_size=50
        ),
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_turnstile_still_one_sided(self, keys, deletions, seed):
        """Deleting only previously-inserted mass keeps the guarantee."""
        sketch = CountMinSketch(num_hashes=3, row_width=37, seed=seed)
        exact = ExactCounter()
        for key in keys:
            sketch.update(key)
            exact.update(key)
        for key in deletions:
            if exact.count_of(key) > 0:
                sketch.update(key, -1)
                exact.update(key, -1)
        for key, count in exact.items():
            assert sketch.estimate(key) >= count


class TestFcmProperties:
    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_one_sided_overestimate(self, keys, seed):
        fcm = FrequencyAwareCountMin(
            num_hashes=8, row_width=43, mg_capacity=4, seed=seed
        )
        truth = Counter()
        for key in keys:
            fcm.update(key)
            truth[key] += 1
        for key, count in truth.items():
            assert fcm.estimate(key) >= count

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_mg_free_variant_one_sided(self, keys, seed):
        fcm = FrequencyAwareCountMin(
            num_hashes=8, row_width=43, use_mg_counter=False, seed=seed
        )
        truth = Counter()
        for key in keys:
            fcm.update(key)
            truth[key] += 1
        for key, count in truth.items():
            assert fcm.estimate(key) >= count


class TestCountSketchProperties:
    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_insert_delete_cancels(self, keys, seed):
        sketch = CountSketch(num_hashes=3, row_width=31, seed=seed)
        for key in keys:
            sketch.update(key)
        for key in keys:
            sketch.update(key, -1)
        assert not sketch._table.any()

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_row_sums_match_signed_mass(self, keys, seed):
        """Each row's sum equals the sum of signs of inserted items."""
        sketch = CountSketch(num_hashes=3, row_width=31, seed=seed)
        sketch.update_batch(np.array(keys))
        from repro.hashing.families import key_to_int

        for row in range(3):
            signed = sum(
                sketch._signs[row](key_to_int(key)) for key in keys
            )
            assert int(sketch._table[row].sum()) == signed
