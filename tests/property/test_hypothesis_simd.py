"""Property-based equivalence of the three find-index kernels."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd.engine import (
    numpy_find_index,
    scalar_find_index,
    simd_find_index,
)

id_arrays = st.lists(
    st.integers(min_value=1, max_value=1000), min_size=1, max_size=64
)


class TestKernelEquivalence:
    @given(ids=id_arrays, probe=st.integers(min_value=1, max_value=1100))
    @settings(max_examples=150, deadline=None)
    def test_three_way_agreement(self, ids, probe):
        array = np.array(ids, dtype=np.int32)
        expected = scalar_find_index(array, probe)
        assert numpy_find_index(array, probe) == expected
        assert simd_find_index(array, probe) == expected

    @given(ids=id_arrays)
    @settings(max_examples=80, deadline=None)
    def test_every_present_id_found(self, ids):
        array = np.array(ids, dtype=np.int32)
        for index, value in enumerate(ids):
            found = simd_find_index(array, value)
            assert found <= index
            assert array[found] == value

    @given(
        ids=st.lists(
            st.integers(min_value=1, max_value=30), min_size=1, max_size=48
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_first_occurrence_semantics(self, ids):
        """All kernels return the first match for duplicated ids."""
        array = np.array(ids, dtype=np.int32)
        for value in set(ids):
            expected = ids.index(value)
            assert simd_find_index(array, value) == expected
            assert numpy_find_index(array, value) == expected
