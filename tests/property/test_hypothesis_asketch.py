"""Property-based tests for ASketch end-to-end invariants (hypothesis)."""

from __future__ import annotations

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.asketch import ASketch
from repro.counters.exact import ExactCounter
from repro.sketches.count_min import CountMinSketch

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=200), min_size=1, max_size=500
)
filter_kinds = st.sampled_from(
    ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
)
seeds = st.integers(min_value=0, max_value=30)

def build(seed: int, kind: str, filter_items: int = 4) -> ASketch:
    sketch = CountMinSketch(num_hashes=3, row_width=19, seed=seed)
    return ASketch(sketch=sketch, filter_items=filter_items, filter_kind=kind)


class TestOneSidedGuarantee:
    @given(keys=keys_strategy, kind=filter_kinds, seed=seeds)
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates(self, keys, kind, seed):
        """The paper's central invariant, under heavy collision pressure
        (width-19 sketch) and every filter implementation."""
        asketch = build(seed, kind)
        truth = Counter()
        for key in keys:
            asketch.update(key)
            truth[key] += 1
        for key, count in truth.items():
            assert asketch.query(key) >= count

    @given(
        keys=keys_strategy,
        kind=filter_kinds,
        seed=seeds,
        delete_every=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_one_sided_with_deletions(self, keys, kind, seed, delete_every):
        """Appendix A deletions preserve the guarantee in any interleaving
        that respects the strict turnstile model."""
        asketch = build(seed, kind)
        exact = ExactCounter()
        for index, key in enumerate(keys):
            asketch.update(key)
            exact.update(key)
            if index % delete_every == 0 and exact.count_of(key) > 0:
                asketch.remove(key, 1)
                exact.update(key, -1)
        for key, count in exact.items():
            assert asketch.query(key) >= count


class TestMassConservation:
    @given(keys=keys_strategy, kind=filter_kinds, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_filter_plus_sketch_cover_stream(self, keys, kind, seed):
        """Every stream count is represented exactly once: resident mass
        in the filter plus mass hashed into the sketch equals N."""
        asketch = build(seed, kind)
        for key in keys:
            asketch.update(key)
        resident = sum(
            entry.resident_count for entry in asketch.filter.entries()
        )
        sketch_mass = int(asketch.sketch.table[0].sum())
        assert resident + sketch_mass == len(keys)

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_lemma1_insertions_bounded(self, keys, seed):
        """Lemma 1 under arbitrary inputs: per-key sketch insertions never
        exceed the key's occurrence count."""
        from tests.core.test_asketch import DictSketch

        asketch = ASketch(sketch=DictSketch(), filter_items=4)
        for key in keys:
            asketch.update(key)
        occurrences = Counter(keys)
        insertions = Counter(k for k, _ in asketch.sketch.update_log)
        for key, count in insertions.items():
            assert count <= occurrences[key]


class TestMergeProperties:
    @given(
        left_keys=keys_strategy,
        right_keys=keys_strategy,
        kind=filter_kinds,
        seed=seeds,
    )
    @settings(max_examples=40, deadline=None)
    def test_merge_one_sided(self, left_keys, right_keys, kind, seed):
        """Merged ASketch over-estimates the concatenated streams."""
        left = ASketch(
            sketch=CountMinSketch(num_hashes=3, row_width=19, seed=seed),
            filter_items=4,
            filter_kind=kind,
        )
        right = ASketch(
            sketch=CountMinSketch(num_hashes=3, row_width=19, seed=seed),
            filter_items=4,
            filter_kind=kind,
        )
        for key in left_keys:
            left.update(key)
        for key in right_keys:
            right.update(key)
        left.merge(right)
        truth = Counter(left_keys) + Counter(right_keys)
        for key, count in truth.items():
            assert left.query(key) >= count

    @given(left_keys=keys_strategy, right_keys=keys_strategy, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_merge_conserves_mass(self, left_keys, right_keys, seed):
        left = ASketch(
            sketch=CountMinSketch(num_hashes=3, row_width=19, seed=seed),
            filter_items=4,
        )
        right = ASketch(
            sketch=CountMinSketch(num_hashes=3, row_width=19, seed=seed),
            filter_items=4,
        )
        for key in left_keys:
            left.update(key)
        for key in right_keys:
            right.update(key)
        left.merge(right)
        resident = sum(e.resident_count for e in left.filter.entries())
        assert resident + left.sketch.total_count() == (
            len(left_keys) + len(right_keys)
        )


class TestTopKSoundness:
    @given(keys=keys_strategy, kind=filter_kinds, seed=seeds)
    @settings(max_examples=40, deadline=None)
    def test_topk_counts_are_overestimates(self, keys, kind, seed):
        asketch = build(seed, kind, filter_items=6)
        truth = Counter()
        for key in keys:
            asketch.update(key)
            truth[key] += 1
        for key, reported in asketch.top_k(6):
            assert reported >= truth[key]

    @given(keys=keys_strategy, seed=seeds)
    @settings(max_examples=30, deadline=None)
    def test_query_matches_filter_or_sketch(self, keys, seed):
        """Algorithm 2 dichotomy: a query answer comes verbatim from the
        filter's new_count or the sketch's estimate."""
        asketch = build(seed, "relaxed-heap")
        for key in keys:
            asketch.update(key)
        for key in set(keys):
            answer = asketch.query(key)
            in_filter = asketch.filter.get_new_count(key)
            if in_filter is not None:
                assert answer == in_filter
            else:
                assert answer == asketch.sketch.estimate(key)
