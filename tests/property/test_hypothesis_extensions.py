"""Property-based tests for the extension features (window, group)."""

from __future__ import annotations

from collections import Counter

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel_group import KernelGroup
from repro.core.window import SlidingWindowASketch

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=80), min_size=1, max_size=400
)


class TestWindowProperties:
    @given(
        keys=keys_strategy,
        window=st.integers(min_value=1, max_value=50),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_window_one_sided_over_last_w(self, keys, window, seed):
        """Estimates over-estimate exactly the last ``window`` tuples."""
        synopsis = SlidingWindowASketch(
            window, total_bytes=16 * 1024, filter_items=4, seed=seed
        )
        for key in keys:
            synopsis.process(key)
        truth = Counter(keys[-window:])
        for key in set(keys):
            assert synopsis.query(key) >= truth.get(key, 0)

    @given(keys=keys_strategy, window=st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_window_contents_are_last_w(self, keys, window):
        synopsis = SlidingWindowASketch(window, total_bytes=16 * 1024)
        for key in keys:
            synopsis.process(key)
        expected = keys[-window:]
        assert synopsis.window_contents().tolist() == expected

    @given(keys=keys_strategy, window=st.integers(min_value=1, max_value=30))
    @settings(max_examples=30, deadline=None)
    def test_mass_conservation_after_full_drain(self, keys, window):
        """Once every original tuple has expired, the synopsis holds
        exactly the window's worth of mass (turnstile adds and removes
        cancel exactly)."""
        synopsis = SlidingWindowASketch(
            window, total_bytes=16 * 1024, filter_items=4, seed=3
        )
        for key in keys:
            synopsis.process(key)
        sentinel = 10_000
        for offset in range(window):
            synopsis.process(sentinel + offset)
        inner = synopsis.asketch
        resident = sum(
            entry.resident_count for entry in inner.filter.entries()
        )
        assert resident + inner.sketch.total_count() == window
        # And every sentinel still answers at least 1.
        for offset in range(window):
            assert synopsis.query(sentinel + offset) >= 1


class TestKernelGroupProperties:
    @given(
        chunks=st.lists(keys_strategy, min_size=1, max_size=4),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40, deadline=None)
    def test_merged_queries_one_sided(self, chunks, seed):
        group = KernelGroup(
            len(chunks), total_bytes=16 * 1024, filter_items=4, seed=seed
        )
        truth: Counter = Counter()
        for index, chunk in enumerate(chunks):
            group.process_stream_on(index, np.array(chunk, dtype=np.int64))
            truth.update(chunk)
        for key, count in truth.items():
            assert group.query(key) >= count

    @given(keys=keys_strategy, kernels=st.integers(min_value=1, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_scatter_conserves_mass(self, keys, kernels):
        group = KernelGroup(kernels, total_bytes=16 * 1024, filter_items=4)
        group.scatter_stream(np.array(keys, dtype=np.int64))
        assert group.total_mass == len(keys)
