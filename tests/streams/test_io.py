"""Tests for stream persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import StreamFormatError
from repro.streams import load_stream, save_stream, zipf_stream


class TestRoundtrip:
    def test_keys_and_metadata_survive(self, tmp_path):
        stream = zipf_stream(2000, 300, 1.3, seed=8, name="roundtrip")
        path = tmp_path / "stream.npz"
        save_stream(stream, path)
        loaded = load_stream(path)
        np.testing.assert_array_equal(loaded.keys, stream.keys)
        assert loaded.name == "roundtrip"
        assert loaded.skew == 1.3
        assert loaded.n_distinct_domain == 300
        assert loaded.seed == 8

    def test_loaded_stream_usable(self, tmp_path):
        stream = zipf_stream(1000, 100, 1.0, seed=1)
        path = tmp_path / "s.npz"
        save_stream(stream, path)
        loaded = load_stream(path)
        assert loaded.exact.total == 1000


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StreamFormatError):
            load_stream(tmp_path / "nope.npz")

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        path.write_bytes(b"not a zip archive")
        with pytest.raises(StreamFormatError):
            load_stream(path)

    def test_wrong_archive_keys(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, values=np.arange(5))
        with pytest.raises(StreamFormatError):
            load_stream(path)
