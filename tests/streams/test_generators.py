"""Tests for the stream generators and the Stream container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.streams import (
    Stream,
    ip_trace_stream,
    kosarak_stream,
    uniform_stream,
    zipf_stream,
)
from repro.streams.ip_trace import decode_edge, encode_edge
from repro.streams.kosarak import PAPER_DISTINCT_ITEMS


class TestStreamContainer:
    def test_length_and_total(self):
        stream = Stream(keys=np.array([1, 2, 2, 3]))
        assert len(stream) == 4
        assert stream.total_count == 4

    def test_exact_cached(self):
        stream = Stream(keys=np.array([1, 2, 2, 3]))
        assert stream.exact is stream.exact
        assert stream.exact.count_of(2) == 2

    def test_rejects_2d_keys(self):
        with pytest.raises(ConfigurationError):
            Stream(keys=np.zeros((2, 2)))

    def test_prefix_has_fresh_truth(self):
        stream = Stream(keys=np.array([5, 5, 7, 8]))
        prefix = stream.prefix(2)
        assert len(prefix) == 2
        assert prefix.exact.count_of(5) == 2
        assert prefix.exact.count_of(7) == 0

    def test_chunks_cover_stream(self):
        stream = Stream(keys=np.arange(10))
        chunks = list(stream.chunks(3))
        assert [len(c) for c in chunks] == [3, 3, 3, 1]
        np.testing.assert_array_equal(np.concatenate(chunks), stream.keys)

    def test_true_top_k_and_max_frequency(self):
        stream = Stream(keys=np.array([1, 1, 1, 2, 2, 3]))
        assert stream.true_top_k(2) == [(1, 3), (2, 2)]
        assert stream.max_frequency() == 3

    def test_iteration(self):
        stream = Stream(keys=np.array([4, 5]))
        assert list(stream) == [4, 5]


class TestZipf:
    def test_deterministic_per_seed(self):
        first = zipf_stream(1000, 100, 1.2, seed=3)
        second = zipf_stream(1000, 100, 1.2, seed=3)
        np.testing.assert_array_equal(first.keys, second.keys)

    def test_different_seeds_differ(self):
        first = zipf_stream(1000, 100, 1.2, seed=3)
        second = zipf_stream(1000, 100, 1.2, seed=4)
        assert not np.array_equal(first.keys, second.keys)

    def test_keys_within_domain(self):
        stream = zipf_stream(5000, 256, 1.0, seed=1)
        assert stream.keys.min() >= 0
        assert stream.keys.max() < 256

    def test_skew_concentrates_mass(self):
        flat = zipf_stream(20_000, 5_000, 0.0, seed=2)
        steep = zipf_stream(20_000, 5_000, 2.0, seed=2)
        flat_top = sum(count for _, count in flat.exact.top_k(10))
        steep_top = sum(count for _, count in steep.exact.top_k(10))
        assert steep_top > 5 * flat_top

    def test_top_mass_matches_analysis(self):
        """Empirical top-32 mass tracks the closed form within noise."""
        from repro.core.analysis import zipf_top_k_mass

        stream = zipf_stream(200_000, 20_000, 1.5, seed=5)
        top_mass = sum(count for _, count in stream.exact.top_k(32))
        predicted = zipf_top_k_mass(1.5, 20_000, 32)
        assert top_mass / len(stream) == pytest.approx(predicted, rel=0.05)

    def test_keys_uncorrelated_with_rank(self):
        """The most frequent item should not always be key 0."""
        top_keys = {
            zipf_stream(5000, 1000, 2.0, seed=s).true_top_k(1)[0][0]
            for s in range(5)
        }
        assert top_keys != {0}

    def test_negative_skew_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_stream(100, 10, -1.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_stream(0, 10, 1.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            zipf_stream(100, 10, 1.0, method="bootstrap")


class TestExpectedCountsMethod:
    def test_exact_length(self):
        stream = zipf_stream(12_345, 900, 1.3, seed=3, method="expected")
        assert len(stream) == 12_345

    def test_counts_match_expectation(self):
        from repro.core.analysis import zipf_probabilities

        n, m, skew = 50_000, 2_000, 1.5
        stream = zipf_stream(n, m, skew, seed=4, method="expected")
        probabilities = np.sort(zipf_probabilities(skew, m))[::-1]
        realised = np.sort(
            np.array([c for _, c in stream.exact.items()])
        )[::-1]
        expected_top = probabilities[0] * n
        # The realised top count equals the rounded expectation exactly.
        assert abs(realised[0] - expected_top) <= 1

    def test_no_frequency_noise_across_seeds(self):
        """Different seeds shuffle order/labels but realise identical
        frequency vectors."""
        first = zipf_stream(10_000, 500, 1.2, seed=5, method="expected")
        second = zipf_stream(10_000, 500, 1.2, seed=6, method="expected")
        counts_a = sorted(c for _, c in first.exact.items())
        counts_b = sorted(c for _, c in second.exact.items())
        assert counts_a == counts_b

    def test_sampled_method_has_noise(self):
        first = zipf_stream(10_000, 500, 1.2, seed=5, method="sampled")
        second = zipf_stream(10_000, 500, 1.2, seed=6, method="sampled")
        counts_a = sorted(c for _, c in first.exact.items())
        counts_b = sorted(c for _, c in second.exact.items())
        assert counts_a != counts_b


class TestUniform:
    def test_matches_zipf_zero_statistically(self):
        uniform = uniform_stream(50_000, 500, seed=1)
        counts = np.array([c for _, c in uniform.exact.items()])
        assert counts.mean() == pytest.approx(100, rel=0.05)
        assert counts.std() < 30

    def test_skew_attribute_zero(self):
        assert uniform_stream(100, 10).skew == 0.0


class TestIpTrace:
    def test_published_shape(self):
        stream = ip_trace_stream(stream_size=100_000, n_distinct=3_000, seed=2)
        assert stream.name == "ip-trace"
        assert stream.skew == 0.9
        assert len(stream) == 100_000

    def test_edges_decode_to_endpoints(self):
        stream = ip_trace_stream(stream_size=10_000, n_distinct=1_000, seed=2)
        for key in stream.keys[:100].tolist():
            source, destination = decode_edge(key % (1 << 42))
            assert source >= 0 and destination >= 0

    def test_encode_decode_roundtrip(self):
        assert decode_edge(encode_edge(123, 456)) == (123, 456)

    def test_distinct_edges_preserved(self):
        stream = ip_trace_stream(stream_size=50_000, n_distinct=2_000, seed=3)
        # Collision fixing must keep the distinct count of the base stream.
        base_distinct = stream.distinct_seen()
        assert base_distinct <= 2_000
        assert base_distinct > 1_000


class TestKosarak:
    def test_published_shape(self):
        stream = kosarak_stream(stream_size=50_000, seed=4)
        assert stream.name == "kosarak"
        assert stream.skew == 1.0
        assert stream.n_distinct_domain == PAPER_DISTINCT_ITEMS

    def test_max_frequency_ratio_plausible(self):
        """Paper: max frequency ~7.5% of the stream; Zipf 1.0 over 40 270
        items gives ~9%."""
        stream = kosarak_stream(stream_size=200_000, seed=4)
        ratio = stream.max_frequency() / len(stream)
        assert 0.04 < ratio < 0.15
