"""Unit tests for the Count-Min sketch."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, NegativeCountError
from repro.sketches.base import row_width_for_bytes
from repro.sketches.count_min import CountMinSketch


class TestConstruction:
    def test_exactly_one_sizing_argument(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(8)
        with pytest.raises(ConfigurationError):
            CountMinSketch(8, 100, total_bytes=1024)

    def test_bytes_budget_sets_dimensions(self):
        sketch = CountMinSketch(num_hashes=8, total_bytes=128 * 1024)
        assert sketch.row_width == 128 * 1024 // (8 * 4)
        assert sketch.size_bytes == 128 * 1024

    def test_row_width_for_bytes_too_small(self):
        with pytest.raises(ConfigurationError):
            row_width_for_bytes(16, 8)

    def test_zero_hashes_rejected(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(num_hashes=0, row_width=16)


class TestOneSidedGuarantee:
    def test_never_underestimates(self, skewed_stream):
        sketch = CountMinSketch(num_hashes=4, total_bytes=8 * 1024)
        sketch.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        for key, true in exact.top_k(200):
            assert sketch.estimate(key) >= true

    def test_exact_when_no_collisions(self):
        sketch = CountMinSketch(num_hashes=4, row_width=4096, seed=1)
        for key in range(10):
            for _ in range(key + 1):
                sketch.update(key)
        for key in range(10):
            assert sketch.estimate(key) == key + 1

    def test_update_returns_post_update_estimate(self):
        sketch = CountMinSketch(num_hashes=4, row_width=512, seed=2)
        first = sketch.update(42)
        second = sketch.update(42)
        assert second >= first + 1


class TestErrorBound:
    def test_markov_bound_holds_on_average(self, skewed_stream):
        """Mean over-estimation <= (e/h) * N for a healthy margin of keys."""
        sketch = CountMinSketch(num_hashes=8, total_bytes=32 * 1024)
        sketch.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        bound = (math.e / sketch.row_width) * exact.total
        keys = [key for key, _ in exact.top_k(500)]
        estimates = sketch.estimate_batch(np.array(keys))
        truths = [exact.count_of(k) for k in keys]
        violations = sum(
            1 for est, true in zip(estimates, truths) if est - true > bound
        )
        # The bound holds per-key w.p. >= 1 - e^-8 ~ 0.99966.
        assert violations <= 2


class TestBatchScalarEquivalence:
    def test_tables_identical(self, uniform_keys):
        batched = CountMinSketch(num_hashes=4, row_width=777, seed=9)
        batched.update_batch(uniform_keys)
        looped = CountMinSketch(num_hashes=4, row_width=777, seed=9)
        for key in uniform_keys.tolist():
            looped.update(key)
        np.testing.assert_array_equal(batched.table, looped.table)

    def test_estimate_batch_matches_scalar(self, uniform_keys):
        sketch = CountMinSketch(num_hashes=4, row_width=777, seed=9)
        sketch.update_batch(uniform_keys)
        probe = uniform_keys[:100]
        assert sketch.estimate_batch(probe) == [
            sketch.estimate(int(k)) for k in probe
        ]

    def test_estimate_batch_empty(self):
        sketch = CountMinSketch(num_hashes=2, row_width=64)
        assert sketch.estimate_batch([]) == []


class TestWeightedAndNegative:
    def test_weighted_updates(self):
        sketch = CountMinSketch(num_hashes=4, row_width=1024, seed=3)
        sketch.update(5, 100)
        sketch.update(5, 23)
        assert sketch.estimate(5) >= 123

    def test_negative_update_valid(self):
        sketch = CountMinSketch(num_hashes=4, row_width=1024, seed=3)
        sketch.update(5, 10)
        sketch.update(5, -4)
        assert sketch.estimate(5) >= 6

    def test_negative_update_below_zero_raises(self):
        sketch = CountMinSketch(num_hashes=4, row_width=1024, seed=3)
        sketch.update(5, 2)
        with pytest.raises(NegativeCountError):
            sketch.update(5, -3)

    def test_total_count_tracks_mass(self, uniform_keys):
        sketch = CountMinSketch(num_hashes=4, row_width=512)
        sketch.update_batch(uniform_keys)
        assert sketch.total_count() == len(uniform_keys)


class TestConservativeUpdate:
    def test_conservative_never_less_accurate(self, skewed_stream):
        classic = CountMinSketch(num_hashes=4, total_bytes=8 * 1024, seed=5)
        conservative = CountMinSketch(
            num_hashes=4, total_bytes=8 * 1024, seed=5, conservative=True
        )
        keys = skewed_stream.keys[:20000]
        for key in keys.tolist():
            classic.update(key)
            conservative.update(key)
        exact = skewed_stream.prefix(20000).exact
        for key, true in exact.top_k(100):
            assert true <= conservative.estimate(key) <= classic.estimate(key)

    def test_conservative_batch_falls_back_to_loop(self, uniform_keys):
        direct = CountMinSketch(num_hashes=4, row_width=777, seed=5,
                                conservative=True)
        direct.update_batch(uniform_keys[:2000])
        looped = CountMinSketch(num_hashes=4, row_width=777, seed=5,
                                conservative=True)
        for key in uniform_keys[:2000].tolist():
            looped.update(key)
        np.testing.assert_array_equal(direct.table, looped.table)


class TestOps:
    def test_update_charges_hash_and_cells(self):
        sketch = CountMinSketch(num_hashes=6, row_width=64)
        sketch.update(1)
        assert sketch.ops.hash_evals == 6
        assert sketch.ops.sketch_cell_writes == 6

    def test_estimate_charges_reads(self):
        sketch = CountMinSketch(num_hashes=6, row_width=64)
        sketch.estimate(1)
        assert sketch.ops.sketch_cell_reads == 6

    def test_process_stream_charges_items(self, uniform_keys):
        sketch = CountMinSketch(num_hashes=4, row_width=512)
        sketch.process_stream(uniform_keys)
        assert sketch.ops.items == len(uniform_keys)
