"""Tests for the FrequencySketch base-class plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.costs import OpCounters
from repro.sketches.base import (
    CELL_BYTES,
    FrequencySketch,
    row_width_for_bytes,
)


class MinimalSketch(FrequencySketch):
    """Smallest possible conforming implementation (exact dict counts)."""

    def __init__(self) -> None:
        self.counts: dict[int, int] = {}
        self.ops = OpCounters()

    @property
    def size_bytes(self) -> int:
        return 64

    def update(self, key: int, amount: int = 1) -> int:
        self.counts[key] = self.counts.get(key, 0) + amount
        return self.counts[key]

    def estimate(self, key: int) -> int:
        return self.counts.get(key, 0)


class TestDefaults:
    def test_default_update_batch_loops(self):
        sketch = MinimalSketch()
        sketch.update_batch(np.array([1, 1, 2]))
        assert sketch.counts == {1: 2, 2: 1}

    def test_default_estimate_batch_loops(self):
        sketch = MinimalSketch()
        sketch.update(5, 3)
        assert sketch.estimate_batch([5, 6]) == [3, 0]

    def test_process_stream_charges_items(self):
        sketch = MinimalSketch()
        sketch.process_stream(np.array([1, 2, 3]))
        assert sketch.ops.items == 3
        assert sketch.counts == {1: 1, 2: 1, 3: 1}


class TestSizing:
    def test_cell_bytes_is_paper_accounting(self):
        assert CELL_BYTES == 4

    @pytest.mark.parametrize(
        "total,hashes,expected",
        [(128 * 1024, 8, 4096), (16 * 1024, 8, 512), (64, 2, 8)],
    )
    def test_row_width_for_bytes(self, total, hashes, expected):
        assert row_width_for_bytes(total, hashes) == expected

    def test_invalid_hash_count(self):
        with pytest.raises(ConfigurationError):
            row_width_for_bytes(1024, 0)
