"""Unit tests for the Holistic-UDAF aggregate table + sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sketches.count_min import CountMinSketch
from repro.sketches.holistic_udaf import HolisticUDAF


class TestConstruction:
    def test_table_space_carved_from_budget(self):
        hudaf = HolisticUDAF(32, total_bytes=128 * 1024)
        plain = CountMinSketch(8, total_bytes=128 * 1024)
        assert hudaf.sketch.row_width < plain.row_width
        assert hudaf.size_bytes <= 128 * 1024

    def test_table_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            HolisticUDAF(1024, total_bytes=4096)

    def test_zero_table_rejected(self):
        with pytest.raises(ConfigurationError):
            HolisticUDAF(0, total_bytes=4096)


class TestFlushing:
    def test_no_flush_until_table_full(self):
        hudaf = HolisticUDAF(4, total_bytes=16 * 1024)
        for key in [1, 2, 3, 4, 1, 2]:
            hudaf.process(key)
        assert hudaf.flush_count == 0
        assert hudaf.sketch.total_count() == 0

    def test_flush_on_overflow(self):
        hudaf = HolisticUDAF(4, total_bytes=16 * 1024)
        for key in [1, 2, 3, 4, 5]:
            hudaf.process(key)
        assert hudaf.flush_count == 1
        # The four old keys were flushed; 5 is pending in the table.
        assert hudaf.sketch.total_count() == 4

    def test_aggregation_before_flush(self):
        hudaf = HolisticUDAF(2, total_bytes=16 * 1024)
        for key in [1, 1, 1, 2, 3]:
            hudaf.process(key)
        # Flush pushed {1: 3, 2: 1} as aggregated counts.
        assert hudaf.sketch.estimate(1) >= 3

    def test_manual_flush(self):
        hudaf = HolisticUDAF(8, total_bytes=16 * 1024)
        hudaf.process(1)
        hudaf.flush()
        assert hudaf.flush_count == 1
        assert hudaf.sketch.estimate(1) >= 1


class TestEstimates:
    def test_estimate_includes_pending_table_count(self):
        hudaf = HolisticUDAF(8, total_bytes=16 * 1024)
        for _ in range(5):
            hudaf.process(9)
        assert hudaf.estimate(9) >= 5  # nothing flushed yet

    def test_never_underestimates(self, skewed_stream):
        hudaf = HolisticUDAF(32, total_bytes=32 * 1024, seed=1)
        hudaf.process_stream(skewed_stream.keys)
        exact = skewed_stream.exact
        for key, true in exact.top_k(200):
            assert hudaf.estimate(key) >= true

    def test_error_comparable_to_count_min(self, skewed_stream):
        """Figure 7's observation: H-UDAF error ~= Count-Min error."""
        budget = 32 * 1024
        hudaf = HolisticUDAF(32, total_bytes=budget, seed=2)
        cms = CountMinSketch(8, total_bytes=budget, seed=2)
        hudaf.process_stream(skewed_stream.keys)
        cms.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        keys = [key for key, _ in exact.top_k(500)]
        hudaf_error = sum(hudaf.estimate(k) - exact.count_of(k) for k in keys)
        cms_error = sum(cms.estimate(k) - exact.count_of(k) for k in keys)
        # Same order of magnitude (they share the sketch mechanism).
        assert hudaf_error <= cms_error * 5 + 50
        assert cms_error <= hudaf_error * 5 + 50

    def test_final_state_matches_direct_sketch_after_flush(self, rng):
        """Flush-everything ends in the same sketch state as direct feed."""
        keys = rng.integers(0, 100, size=3000)
        hudaf = HolisticUDAF(16, total_bytes=16 * 1024, seed=3)
        hudaf.process_stream(np.asarray(keys))
        hudaf.flush()
        direct = CountMinSketch(
            8, row_width=hudaf.sketch.row_width, seed=3
        )
        direct.update_batch(np.asarray(keys))
        np.testing.assert_array_equal(hudaf.sketch.table, direct.table)


class TestThroughputShape:
    def test_fewer_flushes_with_skew(self, skewed_stream, uniform_keys):
        skewed = HolisticUDAF(32, total_bytes=32 * 1024)
        skewed.process_stream(skewed_stream.keys[:20000])
        uniform = HolisticUDAF(32, total_bytes=32 * 1024)
        uniform.process_stream(uniform_keys[:20000])
        assert skewed.flush_count < uniform.flush_count

    def test_stage_ops_split(self, uniform_keys):
        hudaf = HolisticUDAF(32, total_bytes=32 * 1024)
        hudaf.process_stream(uniform_keys[:5000])
        stage0, stage1 = hudaf.stage_ops()
        assert stage0.filter_probes == 5000
        assert stage1.hash_evals > 0
        assert stage1.filter_probes == 0
