"""SF-sketch: slim/fat split, conditional updates, protocol, merging."""

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError, NegativeCountError
from repro.sketches.count_min import CountMinSketch
from repro.sketches.sf_sketch import SFSketch
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(30_000, 8_000, 1.2, seed=11)


def _true_counts():
    keys, counts = np.unique(STREAM.keys, return_counts=True)
    return dict(zip(keys.tolist(), counts.tolist()))


class TestConstruction:
    def test_sizing_reports_slim_bytes_only(self):
        sketch = SFSketch(num_hashes=4, total_bytes=4 * 1024, fat_ratio=8)
        assert sketch.size_bytes == 4 * 1024
        assert sketch.total_memory_bytes == 4 * 1024 * 9

    def test_fat_stage_is_wider(self):
        sketch = SFSketch(num_hashes=4, row_width=64, fat_ratio=8)
        assert sketch.fat.row_width == 64 * 8
        assert sketch.slim.row_width == 64

    def test_fat_ratio_validated(self):
        with pytest.raises(ConfigurationError):
            SFSketch(total_bytes=1024, fat_ratio=0)

    def test_stage_hash_families_differ(self):
        sketch = SFSketch(num_hashes=4, row_width=64, fat_ratio=1)
        assert sketch.slim.hash_columns(42) != sketch.fat.hash_columns(42)


class TestEstimates:
    def test_one_sided_over_full_stream(self):
        sketch = SFSketch(total_bytes=8 * 1024, seed=5)
        sketch.process_stream(STREAM.keys)
        for key, count in _true_counts().items():
            assert sketch.estimate(key) >= count

    def test_slim_beats_plain_count_min_at_equal_bytes(self):
        """The point of SF: the shipped table is more accurate than a
        plain Count-Min of the same size."""
        sketch = SFSketch(total_bytes=8 * 1024, seed=5)
        plain = CountMinSketch(total_bytes=8 * 1024, seed=5)
        sketch.process_stream(STREAM.keys)
        plain.process_stream(STREAM.keys)
        true = _true_counts()
        sf_err = sum(sketch.estimate(k) - c for k, c in true.items())
        cm_err = sum(plain.estimate(k) - c for k, c in true.items())
        assert sf_err < cm_err / 2

    def test_update_returns_slim_estimate(self):
        sketch = SFSketch(total_bytes=4 * 1024)
        estimate = sketch.update(7, 3)
        assert estimate >= 3
        assert sketch.estimate(7) == estimate

    def test_estimate_batch_matches_point_queries(self):
        sketch = SFSketch(total_bytes=8 * 1024, seed=5)
        sketch.process_stream(STREAM.keys[:5000])
        probes = STREAM.keys[:200]
        assert sketch.estimate_batch(probes) == [
            sketch.estimate(int(k)) for k in probes
        ]

    def test_deletions_rejected(self):
        sketch = SFSketch(total_bytes=4 * 1024)
        with pytest.raises(NegativeCountError):
            sketch.update(1, -1)


class TestMerge:
    def test_merge_is_one_sided_over_both_streams(self):
        half = STREAM.keys.shape[0] // 2
        a = SFSketch(total_bytes=8 * 1024, seed=5)
        b = SFSketch(total_bytes=8 * 1024, seed=5)
        a.process_stream(STREAM.keys[:half])
        b.process_stream(STREAM.keys[half:])
        a.merge(b)
        for key, count in _true_counts().items():
            assert a.estimate(key) >= count

    def test_merge_requires_matching_geometry(self):
        a = SFSketch(total_bytes=8 * 1024, seed=5)
        b = SFSketch(total_bytes=8 * 1024, seed=6)
        assert not a.is_mergeable_with(b)
        with pytest.raises(ConfigurationError):
            a.merge(b)

    def test_merge_rejects_other_types(self):
        a = SFSketch(total_bytes=8 * 1024)
        assert not a.is_mergeable_with(CountMinSketch(total_bytes=8 * 1024))


class TestProtocol:
    def test_state_roundtrip_continues_identically(self):
        sketch = SFSketch(total_bytes=8 * 1024, seed=5, fat_ratio=4)
        sketch.process_stream(STREAM.keys[:10_000])
        restored = SFSketch.from_state(sketch.state())
        assert restored.state().equals(sketch.state())
        tail = STREAM.keys[10_000:12_000]
        sketch.process_stream(tail)
        restored.process_stream(tail)
        probes = STREAM.keys[:300]
        assert sketch.estimate_batch(probes) == restored.estimate_batch(probes)

    def test_registered_kind(self):
        from repro.synopses.spec import SynopsisSpec, build_synopsis

        built = build_synopsis(
            SynopsisSpec("sf-sketch", {"total_bytes": 4 * 1024})
        )
        assert isinstance(built, SFSketch)

    def test_shared_ops_record(self):
        sketch = SFSketch(total_bytes=4 * 1024)
        sketch.update(1)
        assert sketch.ops is sketch.fat.ops is sketch.slim.ops
        assert sketch.ops.sketch_cell_writes > 0


class TestAsBackStage:
    def test_asketch_over_sf_sketch(self):
        """The staged core accepts SF as a back stage end to end."""
        asketch = ASketch(
            sketch=SFSketch(total_bytes=8 * 1024, seed=2), filter_items=16
        )
        asketch.process_batch(STREAM.keys)
        true = _true_counts()
        top_key, top_count = STREAM.true_top_k(1)[0]
        assert asketch.query(top_key) == top_count
        for key, count in list(true.items())[:300]:
            assert asketch.query(key) >= count
