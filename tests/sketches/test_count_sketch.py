"""Unit tests for Count Sketch."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sketches.count_sketch import CountSketch


class TestConstruction:
    def test_sizing_arguments(self):
        with pytest.raises(ConfigurationError):
            CountSketch(8)
        sketch = CountSketch(num_hashes=5, total_bytes=10 * 1024)
        assert sketch.size_bytes <= 10 * 1024


class TestEstimation:
    def test_exact_when_sparse(self):
        sketch = CountSketch(num_hashes=5, row_width=4096, seed=1)
        for key in range(20):
            for _ in range(key + 1):
                sketch.update(key)
        for key in range(20):
            assert sketch.estimate(key) == key + 1

    def test_unbiased_on_tail(self, skewed_stream):
        """Count Sketch errors are two-sided and roughly centred on zero."""
        sketch = CountSketch(num_hashes=5, total_bytes=16 * 1024, seed=2)
        sketch.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        keys = [key for key, _ in exact.top_k(900)[400:900]]
        errors = [sketch.estimate(k) - exact.count_of(k) for k in keys]
        positive = sum(1 for e in errors if e > 0)
        negative = sum(1 for e in errors if e < 0)
        # Both signs occur (Count-Min would give only non-negative errors).
        assert positive > 0 and negative > 0

    def test_heavy_hitter_accuracy(self, skewed_stream):
        sketch = CountSketch(num_hashes=5, total_bytes=64 * 1024, seed=3)
        sketch.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        for key, true in exact.top_k(5):
            estimate = sketch.estimate(key)
            assert abs(estimate - true) <= max(10, 0.02 * true)

    def test_batch_scalar_equivalence(self, uniform_keys):
        batched = CountSketch(num_hashes=4, row_width=333, seed=4)
        batched.update_batch(uniform_keys[:5000])
        looped = CountSketch(num_hashes=4, row_width=333, seed=4)
        for key in uniform_keys[:5000].tolist():
            looped.update(key)
        probe = uniform_keys[:50]
        assert [batched.estimate(int(k)) for k in probe] == [
            looped.estimate(int(k)) for k in probe
        ]

    def test_deletion_symmetry(self):
        """Inserting then deleting returns the estimate to zero."""
        sketch = CountSketch(num_hashes=5, row_width=256, seed=6)
        sketch.update(7, 10)
        sketch.update(7, -10)
        assert sketch.estimate(7) == 0


class TestOps:
    def test_update_charges_two_hashes_per_row(self):
        sketch = CountSketch(num_hashes=4, row_width=64)
        sketch.update(1)
        assert sketch.ops.hash_evals == 8
        assert sketch.ops.sketch_cell_writes == 4
