"""SALSA: buddy counter merging, one-sidedness, protocol, merging."""

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.errors import ConfigurationError, NegativeCountError
from repro.sketches.count_min import CountMinSketch
from repro.sketches.salsa import SalsaCountMin, _coarsen
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(30_000, 8_000, 1.2, seed=13)


def _true_counts():
    keys, counts = np.unique(STREAM.keys, return_counts=True)
    return dict(zip(keys.tolist(), counts.tolist()))


def _partition_valid(sketch):
    """Every slot's aligned segment must be uniformly labelled and
    mirror one value."""
    for row in range(sketch.num_hashes):
        slot = 0
        while slot < sketch.num_slots:
            head, end, level = sketch._segment(row, slot)
            assert head == slot, (row, slot, head)
            assert (sketch._seg_log[row, head:end] == level).all()
            assert (
                sketch._values[row, head:end]
                == sketch._values[row, head]
            ).all()
            slot = end


class TestConstruction:
    def test_four_times_the_counters_of_count_min(self):
        salsa = SalsaCountMin(num_hashes=8, total_bytes=32 * 1024)
        plain = CountMinSketch(num_hashes=8, total_bytes=32 * 1024)
        assert salsa.num_slots == 4 * plain.row_width
        assert salsa.size_bytes == plain.size_bytes

    def test_dimension_validation(self):
        with pytest.raises(ConfigurationError):
            SalsaCountMin(num_slots=64, total_bytes=1024)
        with pytest.raises(ConfigurationError):
            SalsaCountMin(num_hashes=8, total_bytes=8)
        with pytest.raises(ConfigurationError):
            SalsaCountMin(num_slots=64, slot_bytes=0)

    def test_capacity_model(self):
        salsa = SalsaCountMin(num_slots=64, slot_bytes=1)
        assert salsa._capacity(0) == 255
        assert salsa._capacity(1) == 65_535
        assert salsa._capacity(2) == (1 << 32) - 1


class TestCounterMerging:
    def test_overflow_merges_buddies(self):
        salsa = SalsaCountMin(num_hashes=2, num_slots=8, seed=1)
        salsa.update(5, 300)  # > 255: every row merges at least once
        assert salsa.counter_merges >= 2
        assert salsa.estimate(5) >= 300
        _partition_valid(salsa)

    def test_cascading_merges(self):
        salsa = SalsaCountMin(num_hashes=2, num_slots=8, seed=1)
        salsa.update(5, 100_000)  # needs a 4-slot (32-bit) segment
        assert salsa.estimate(5) >= 100_000
        _partition_valid(salsa)

    def test_whole_row_segment_never_overflows_the_store(self):
        salsa = SalsaCountMin(num_hashes=2, num_slots=4, seed=1)
        salsa.update(5, 1 << 40)
        assert salsa.estimate(5) >= 1 << 40
        _partition_valid(salsa)

    def test_partition_stays_valid_under_stream(self):
        salsa = SalsaCountMin(num_hashes=4, num_slots=128, seed=3)
        salsa.process_stream(STREAM.keys[:20_000])
        _partition_valid(salsa)


class TestEstimates:
    def test_one_sided_over_full_stream(self):
        salsa = SalsaCountMin(total_bytes=8 * 1024, seed=5)
        salsa.process_stream(STREAM.keys)
        for key, count in _true_counts().items():
            assert salsa.estimate(key) >= count

    def test_more_accurate_than_count_min_at_equal_bytes(self):
        salsa = SalsaCountMin(total_bytes=8 * 1024, seed=5)
        plain = CountMinSketch(total_bytes=8 * 1024, seed=5)
        salsa.process_stream(STREAM.keys)
        plain.process_stream(STREAM.keys)
        true = _true_counts()
        salsa_err = sum(salsa.estimate(k) - c for k, c in true.items())
        cm_err = sum(plain.estimate(k) - c for k, c in true.items())
        assert salsa_err < cm_err

    def test_estimate_batch_matches_point_queries(self):
        salsa = SalsaCountMin(total_bytes=8 * 1024, seed=5)
        salsa.process_stream(STREAM.keys[:5000])
        probes = STREAM.keys[:200]
        assert salsa.estimate_batch(probes) == [
            salsa.estimate(int(k)) for k in probes
        ]

    def test_total_count(self):
        salsa = SalsaCountMin(total_bytes=4 * 1024)
        salsa.process_stream(STREAM.keys[:1000])
        assert salsa.total_count() == 1000

    def test_deletions_rejected(self):
        salsa = SalsaCountMin(total_bytes=4 * 1024)
        with pytest.raises(NegativeCountError):
            salsa.update(1, -1)


class TestMerge:
    def _halves(self, seed=5, total_bytes=4 * 1024):
        half = STREAM.keys.shape[0] // 2
        a = SalsaCountMin(total_bytes=total_bytes, seed=seed)
        b = SalsaCountMin(total_bytes=total_bytes, seed=seed)
        a.process_stream(STREAM.keys[:half])
        b.process_stream(STREAM.keys[half:])
        return a, b

    def test_merge_is_one_sided_over_both_streams(self):
        a, b = self._halves()
        a.merge(b)
        _partition_valid(a)
        for key, count in _true_counts().items():
            assert a.estimate(key) >= count

    def test_merge_is_commutative(self):
        a1, b1 = self._halves()
        a2, b2 = self._halves()
        a1.merge(b1)
        b2.merge(a2)
        keys = np.unique(STREAM.keys)[:500]
        assert a1.estimate_batch(keys) == b2.estimate_batch(keys)
        assert (a1._seg_log == b2._seg_log).all()
        assert (a1._values == b2._values).all()

    def test_merge_requires_matching_geometry(self):
        a = SalsaCountMin(total_bytes=4 * 1024, seed=5)
        b = SalsaCountMin(total_bytes=4 * 1024, seed=6)
        assert not a.is_mergeable_with(b)
        with pytest.raises(ConfigurationError):
            a.merge(b)
        assert not a.is_mergeable_with(
            CountMinSketch(total_bytes=4 * 1024, seed=5)
        )


class TestCoarsen:
    def test_identity_on_valid_partitions(self):
        levels = np.array([1, 1, 0, 0, 2, 2, 2, 2], dtype=np.int64)
        assert (_coarsen(levels, 8) == levels).all()

    def test_raises_blocks_to_max(self):
        levels = np.array([0, 1, 0, 0], dtype=np.int64)
        out = _coarsen(levels, 4)
        assert (out[:2] == 1).all()
        assert (out == np.array([1, 1, 0, 0])).all()

    def test_cascading_alignment(self):
        levels = np.array([0, 0, 2, 0, 0, 0, 0, 0], dtype=np.int64)
        out = _coarsen(levels, 8)
        assert (out[:4] == 2).all()


class TestProtocol:
    def test_state_roundtrip_continues_identically(self):
        salsa = SalsaCountMin(total_bytes=4 * 1024, seed=5)
        salsa.process_stream(STREAM.keys[:10_000])
        restored = SalsaCountMin.from_state(salsa.state())
        assert restored.state().equals(salsa.state())
        assert restored.counter_merges == salsa.counter_merges
        tail = STREAM.keys[10_000:12_000]
        salsa.process_stream(tail)
        restored.process_stream(tail)
        probes = STREAM.keys[:300]
        assert salsa.estimate_batch(probes) == restored.estimate_batch(probes)

    def test_registered_kind(self):
        from repro.synopses.spec import SynopsisSpec, build_synopsis

        built = build_synopsis(
            SynopsisSpec("salsa-cm", {"total_bytes": 4 * 1024})
        )
        assert isinstance(built, SalsaCountMin)


class TestAsBackStage:
    def test_asketch_over_salsa(self):
        asketch = ASketch(
            sketch=SalsaCountMin(total_bytes=8 * 1024, seed=2),
            filter_items=16,
        )
        asketch.process_batch(STREAM.keys)
        top_key, top_count = STREAM.true_top_k(1)[0]
        assert asketch.query(top_key) == top_count
        for key, count in list(_true_counts().items())[:300]:
            assert asketch.query(key) >= count
