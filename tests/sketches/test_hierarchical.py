"""Tests for the hierarchical (dyadic) Count-Min."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sketches.hierarchical import HierarchicalCountMin
from repro.streams.zipf import zipf_stream


@pytest.fixture(scope="module")
def loaded():
    """A hierarchy over a 2**14 domain loaded with a skewed stream."""
    stream = zipf_stream(60_000, 16_384, 1.5, seed=91)
    hierarchy = HierarchicalCountMin(
        14, total_bytes=256 * 1024, num_hashes=4, seed=1
    )
    hierarchy.update_batch(stream.keys)
    return hierarchy, stream


class TestConstruction:
    def test_levels(self):
        hierarchy = HierarchicalCountMin(10, total_bytes=64 * 1024)
        assert hierarchy.levels == 11
        assert hierarchy.domain_size == 1024
        assert hierarchy.size_bytes <= 64 * 1024

    def test_invalid_domain(self):
        with pytest.raises(ConfigurationError):
            HierarchicalCountMin(0, total_bytes=64 * 1024)
        with pytest.raises(ConfigurationError):
            HierarchicalCountMin(41, total_bytes=64 * 1024)

    def test_budget_too_small(self):
        with pytest.raises(ConfigurationError):
            HierarchicalCountMin(20, total_bytes=256)

    def test_out_of_domain_keys_rejected(self):
        hierarchy = HierarchicalCountMin(4, total_bytes=8 * 1024)
        with pytest.raises(ConfigurationError):
            hierarchy.update(16)
        with pytest.raises(ConfigurationError):
            hierarchy.update_batch(np.array([3, 99]))


class TestPointAndRange:
    def test_point_one_sided(self, loaded):
        hierarchy, stream = loaded
        for key, count in stream.exact.top_k(100):
            assert hierarchy.estimate(key) >= count

    def test_range_one_sided(self, loaded):
        hierarchy, stream = loaded
        rng = np.random.default_rng(5)
        for _ in range(30):
            low = int(rng.integers(0, 16_000))
            high = int(rng.integers(low, 16_384))
            true = sum(
                count
                for key, count in stream.exact.items()
                if low <= key <= high
            )
            assert hierarchy.range_count(low, high) >= true

    def test_range_reasonably_tight(self, loaded):
        hierarchy, stream = loaded
        estimate = hierarchy.range_count(0, 16_383)
        assert estimate >= len(stream)
        assert estimate <= len(stream) * 1.5

    def test_single_key_range_matches_point(self, loaded):
        hierarchy, _ = loaded
        assert hierarchy.range_count(5, 5) == hierarchy.estimate(5)

    def test_empty_range_rejected(self, loaded):
        hierarchy, _ = loaded
        with pytest.raises(ConfigurationError):
            hierarchy.range_count(10, 5)

    def test_batch_matches_scalar(self):
        batched = HierarchicalCountMin(8, total_bytes=32 * 1024, seed=3)
        looped = HierarchicalCountMin(8, total_bytes=32 * 1024, seed=3)
        keys = np.random.default_rng(7).integers(0, 256, size=2000)
        batched.update_batch(keys)
        for key in keys.tolist():
            looped.update(int(key))
        for key in range(0, 256, 17):
            assert batched.estimate(key) == looped.estimate(key)


class TestHeavyHittersAndTopK:
    def test_heavy_hitters_complete(self, loaded):
        """No true heavy hitter is missed (one-sided descent)."""
        hierarchy, stream = loaded
        threshold = int(0.01 * len(stream))
        reported = {key for key, _ in hierarchy.heavy_hitters(threshold)}
        for key, count in stream.exact.items():
            if count >= threshold:
                assert key in reported

    def test_heavy_hitters_sorted(self, loaded):
        hierarchy, _ = loaded
        estimates = [e for _, e in hierarchy.heavy_hitters(500)]
        assert estimates == sorted(estimates, reverse=True)

    def test_top_k_recovers_heavies(self, loaded):
        hierarchy, stream = loaded
        reported = {key for key, _ in hierarchy.top_k(10)}
        truth = {key for key, _ in stream.true_top_k(10)}
        assert len(reported & truth) >= 8

    def test_top_k_on_empty(self):
        hierarchy = HierarchicalCountMin(6, total_bytes=16 * 1024)
        assert hierarchy.top_k(5) == []

    def test_invalid_parameters(self, loaded):
        hierarchy, _ = loaded
        with pytest.raises(ConfigurationError):
            hierarchy.heavy_hitters(0)
        with pytest.raises(ConfigurationError):
            hierarchy.top_k(0)


class TestVsASketchTradeOff:
    def test_asketch_better_heavy_accuracy_same_space(self, loaded):
        """The paper's position: at equal space, the filter approach
        gives better heavy-hitter accuracy than the hierarchy (which
        splits its budget across levels)."""
        from repro.core.asketch import ASketch

        hierarchy, stream = loaded
        asketch = ASketch(
            total_bytes=hierarchy.size_bytes, filter_items=32, seed=2
        )
        asketch.process_stream(stream.keys)
        top = stream.true_top_k(20)
        hierarchy_error = sum(
            hierarchy.estimate(key) - count for key, count in top
        )
        asketch_error = sum(
            asketch.query(key) - count for key, count in top
        )
        assert asketch_error <= hierarchy_error
