"""Unit tests for Frequency-Aware Counting (FCM)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sketches.count_min import CountMinSketch
from repro.sketches.fcm import FrequencyAwareCountMin


class TestConstruction:
    def test_sizing_arguments(self):
        with pytest.raises(ConfigurationError):
            FrequencyAwareCountMin(8)
        with pytest.raises(ConfigurationError):
            FrequencyAwareCountMin(8, 100, total_bytes=2048)

    def test_mg_space_carved_from_budget(self):
        with_mg = FrequencyAwareCountMin(
            8, total_bytes=32 * 1024, mg_capacity=32
        )
        without_mg = FrequencyAwareCountMin(
            8, total_bytes=32 * 1024, use_mg_counter=False
        )
        assert with_mg.row_width < without_mg.row_width
        assert with_mg.size_bytes <= 32 * 1024
        assert with_mg.size_bytes > 32 * 1024 - 8 * 4

    def test_mg_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyAwareCountMin(8, total_bytes=256, mg_capacity=100)

    def test_row_class_sizes(self):
        fcm = FrequencyAwareCountMin(8, row_width=512)
        assert fcm.rows_high == 4
        assert fcm.rows_low == 6


class TestRowSelection:
    def test_row_sequence_is_distinct_rows(self):
        fcm = FrequencyAwareCountMin(8, row_width=512, seed=3)
        for key in range(200):
            rows = fcm._row_sequence(key, fcm.rows_low)
            assert len(set(rows)) == len(rows)
            assert all(0 <= row < 8 for row in rows)

    def test_high_prefix_shared_with_low(self):
        """The high-class rows are a prefix of the low-class rows."""
        fcm = FrequencyAwareCountMin(8, row_width=512, seed=3)
        for key in range(100):
            high = fcm._row_sequence(key, fcm.rows_high)
            low = fcm._row_sequence(key, fcm.rows_low)
            assert low[: len(high)] == high


class TestGuarantee:
    def test_never_underestimates(self, skewed_stream):
        """Prefix-row queries keep the one-sided guarantee."""
        fcm = FrequencyAwareCountMin(8, total_bytes=16 * 1024, seed=1)
        keys = skewed_stream.keys[:30000]
        for key in keys.tolist():
            fcm.update(key)
        exact = skewed_stream.prefix(30000).exact
        for key, true in exact.items():
            assert fcm.estimate(key) >= true

    def test_more_accurate_than_count_min_on_skew(self, skewed_stream):
        """The paper's accuracy claim: FCM beats Count-Min on heavy items."""
        budget = 16 * 1024
        fcm = FrequencyAwareCountMin(8, total_bytes=budget, seed=2)
        cms = CountMinSketch(8, total_bytes=budget, seed=2)
        for key in skewed_stream.keys.tolist():
            fcm.update(key)
        cms.update_batch(skewed_stream.keys)
        exact = skewed_stream.exact
        keys = [key for key, _ in exact.top_k(300)]
        fcm_error = sum(
            fcm.estimate(k) - exact.count_of(k) for k in keys
        )
        cms_error = sum(
            cms.estimate(k) - exact.count_of(k) for k in keys
        )
        assert fcm_error < cms_error


class TestMgFreeVariant:
    def test_all_items_use_low_rows(self):
        fcm = FrequencyAwareCountMin(
            8, row_width=512, use_mg_counter=False, seed=4
        )
        assert fcm.mg_capacity == 0
        fcm.update(1)
        # rows_low writes + 2 selection hashes.
        assert fcm.ops.hash_evals == fcm.rows_low + 2
        assert fcm.ops.mg_ops == 0

    def test_estimate_exact_when_sparse(self):
        fcm = FrequencyAwareCountMin(
            8, row_width=2048, use_mg_counter=False, seed=5
        )
        for key in range(15):
            for _ in range(key + 1):
                fcm.update(key)
        for key in range(15):
            assert fcm.estimate(key) == key + 1


class TestClassificationDynamics:
    def test_new_item_classified_low(self):
        fcm = FrequencyAwareCountMin(8, row_width=512, mg_capacity=4, seed=7)
        before = fcm.ops.sketch_cell_writes
        fcm.update(1)
        # First occurrence enters MG and is immediately monitored, so it
        # is classified high for this very update (MG updates first).
        writes = fcm.ops.sketch_cell_writes - before
        assert writes in (fcm.rows_high, fcm.rows_low)

    def test_heavy_item_uses_fewer_rows(self):
        fcm = FrequencyAwareCountMin(8, row_width=512, mg_capacity=2, seed=7)
        # Make key 1 clearly MG-monitored.
        for _ in range(20):
            fcm.update(1)
        before = fcm.ops.sketch_cell_writes
        fcm.update(1)
        assert fcm.ops.sketch_cell_writes - before == fcm.rows_high

    def test_cold_item_on_full_mg_uses_low_rows(self):
        fcm = FrequencyAwareCountMin(8, row_width=512, mg_capacity=2, seed=7)
        for _ in range(20):
            fcm.update(1)
            fcm.update(2)
        before = fcm.ops.sketch_cell_writes
        fcm.update(999)  # MG full of {1, 2}: decrement-all, 999 not kept
        assert fcm.ops.sketch_cell_writes - before == fcm.rows_low

    def test_class_flip_keeps_one_sided(self):
        """An item that flips low -> high -> low never underestimates."""
        fcm = FrequencyAwareCountMin(8, row_width=128, mg_capacity=2, seed=9)
        true = 0
        # Phase 1: key 5 becomes heavy (monitored).
        for _ in range(30):
            fcm.update(5)
            true += 1
        # Phase 2: keys 6 and 7 displace it via decrement sweeps.
        for _ in range(60):
            fcm.update(6)
            fcm.update(7)
        # Phase 3: key 5 trickles while (probably) unmonitored.
        for _ in range(5):
            fcm.update(5)
            true += 1
        assert fcm.estimate(5) >= true


class TestOps:
    def test_mg_ops_charged(self):
        fcm = FrequencyAwareCountMin(8, row_width=512, mg_capacity=8)
        fcm.update(1)
        assert fcm.ops.mg_ops >= 1
        assert fcm.ops.filter_probes >= 1
