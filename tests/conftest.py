"""Shared fixtures: small deterministic streams and synopsis builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.streams.zipf import zipf_stream


@pytest.fixture(scope="session")
def skewed_stream():
    """A 60K-tuple Zipf(1.5) stream over 15K items (fast, reusable)."""
    return zipf_stream(stream_size=60_000, n_distinct=15_000, skew=1.5, seed=42)


@pytest.fixture(scope="session")
def mild_stream():
    """A 40K-tuple Zipf(0.9) stream (the IP-trace-like regime)."""
    return zipf_stream(stream_size=40_000, n_distinct=10_000, skew=0.9, seed=7)


@pytest.fixture(scope="session")
def uniform_keys():
    """20K uniform keys over a 5K domain."""
    rng = np.random.default_rng(3)
    return rng.integers(0, 5_000, size=20_000, dtype=np.int64)


@pytest.fixture()
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
