"""Meta-tests over the public API surface."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestAllExports:
    def test_all_names_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_all_sorted(self):
        assert repro.__all__ == sorted(repro.__all__)

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    @pytest.mark.parametrize(
        "module_name",
        [
            "repro.core",
            "repro.counters",
            "repro.hardware",
            "repro.hashing",
            "repro.kernels",
            "repro.metrics",
            "repro.obs",
            "repro.runtime",
            "repro.simd",
            "repro.sketches",
            "repro.streams",
            "repro.synopses",
        ],
    )
    def test_subpackage_all_consistent(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name}"


class TestParallelSurface:
    """The multiprocess runtime is a first-class public API."""

    @pytest.mark.parametrize(
        "name", ["ChunkRing", "ParallelIngestRuntime", "parallel_ingest"]
    )
    def test_exported_at_top_level_and_runtime(self, name):
        runtime = importlib.import_module("repro.runtime")
        assert name in repro.__all__
        assert name in runtime.__all__
        assert getattr(repro, name) is getattr(runtime, name)


class TestDocstrings:
    def _public_members(self):
        for name in repro.__all__:
            member = getattr(repro, name)
            if inspect.isclass(member) or inspect.isfunction(member):
                yield name, member

    def test_every_public_item_documented(self):
        undocumented = [
            name
            for name, member in self._public_members()
            if not (member.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_public_class_method_documented(self):
        """Every public method/property resolves documentation, either
        its own or inherited from the documented base (MRO lookup, as
        ``help()`` shows it)."""
        undocumented = []
        for name, member in self._public_members():
            if not inspect.isclass(member):
                continue
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not (
                    isinstance(method, property)
                    or inspect.isfunction(method)
                ):
                    continue
                resolved = inspect.getdoc(getattr(member, method_name))
                if not (resolved or "").strip():
                    undocumented.append(f"{name}.{method_name}")
        assert undocumented == []


class TestModuleDocstrings:
    def test_every_module_has_a_docstring(self):
        missing = []
        for info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert missing == []
