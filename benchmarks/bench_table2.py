"""Table 2 bench: the analytic model evaluation."""

from __future__ import annotations

from benchmarks.conftest import POINT_CONFIG
from repro.experiments import run_experiment


def test_table2_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("table2", POINT_CONFIG), rounds=1, iterations=1
    )
    persist(result)
    cm = result.row_for("method", "Count-Min")
    asketch = result.row_for("method", "ASketch")
    assert asketch["throughput (items/ms)"] > cm["throughput (items/ms)"]
    assert asketch["expected error bound"] < cm["expected error bound"]
    assert "top-k" in asketch["supported queries"]
