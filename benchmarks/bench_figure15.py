"""Figure 15 bench: filter-size sensitivity (throughput and error)."""

from __future__ import annotations

from benchmarks.conftest import POINT_CONFIG
from repro.experiments import run_experiment


def test_figure15_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure15", POINT_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    by_label = {row["filter size"]: row for row in result.rows}
    cms = by_label["0 (Count-Min)"]
    sweet = by_label["0.4KB (32 items)"]
    largest = by_label["12.0KB (1024 items)"]
    # The paper's two sensitivity observations:
    assert sweet["items/ms (modeled)"] > cms["items/ms (modeled)"]
    assert sweet["items/ms (modeled)"] > largest["items/ms (modeled)"]
    # <= because at bench scale both errors can sit on the zero floor.
    assert sweet["observed error (%)"] <= cms["observed error (%)"]
