"""Ablation: strict vs relaxed heap maintenance (§6.1).

Drives both heap filters with an identical ASketch workload and compares
their heap-maintenance volume and wall time; the relaxed heap must do
strictly less maintenance work at equal accuracy (Table 6 / Figure 14).
"""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.metrics.error import observed_error_percent
from repro.queries.workload import frequency_weighted_queries
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(60_000, 15_000, 1.5, seed=51)
QUERIES = frequency_weighted_queries(STREAM, 8_000, seed=52)
TRUTHS = [STREAM.exact.count_of(int(k)) for k in QUERIES]


def ingest(kind: str) -> ASketch:
    asketch = ASketch(
        total_bytes=64 * 1024, filter_items=32, filter_kind=kind, seed=53
    )
    asketch.process_stream(STREAM.keys)
    return asketch


@pytest.mark.parametrize("kind", ["strict-heap", "relaxed-heap"])
def test_heap_variant(benchmark, kind):
    asketch = benchmark.pedantic(ingest, args=(kind,), rounds=1,
                                 iterations=1)
    error = observed_error_percent(asketch.query_batch(QUERIES), TRUTHS)
    if kind == "strict-heap":
        test_heap_variant.strict = (
            asketch.filter.ops.heap_fixup_levels, error
        )
    else:
        strict_levels, strict_error = test_heap_variant.strict
        relaxed_levels = asketch.filter.ops.heap_fixup_levels
        # Less maintenance work...
        assert relaxed_levels < strict_levels
        # ...identical accuracy (same 32-item capacity, Table 6).
        assert error == pytest.approx(strict_error, rel=0.5, abs=1e-4)
