"""Figure 12 bench: pipeline parallelism vs skew."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure12_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure12", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    speedups = {
        row["skew"]: row["ASketch pipeline speedup"] for row in result.rows
    }
    # The mid-band benefit (paper: ~2x around skew 1.8)...
    midband = max(speedups[s] for s in (1.25, 1.5, 1.75, 2.0))
    assert midband > 1.4
    # ... diminishing at very high skew (paper: above ~2.4).
    assert speedups[3.0] < midband
    # Parallel ASketch above Parallel H-UDAF in the mid band.
    mid_rows = [row for row in result.rows if 1.5 <= row["skew"] <= 2.0]
    for row in mid_rows:
        assert (
            row["Parallel ASketch items/ms"]
            > row["Parallel H-UDAF items/ms"]
        )
