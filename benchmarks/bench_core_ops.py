"""Micro-benchmarks of the individual hot paths (wall clock, Python).

These are the raw ingredients of every figure: filter probe, sketch
update, exchange, query.  Absolute numbers are Python-scaled; ratios
between them are what the reproduction relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.core.filters import make_filter
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(40_000, 10_000, 1.5, seed=61)


@pytest.mark.parametrize(
    "kind", ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
)
def test_filter_hit_path(benchmark, kind):
    filter_ = make_filter(kind, 32)
    for key in range(32):
        filter_.insert(key, 1, 0)
    keys = [int(k) % 32 for k in STREAM.keys[:2000]]

    def hits():
        for key in keys:
            filter_.add_if_present(key, 1)

    benchmark(hits)


def test_count_min_point_update(benchmark):
    sketch = CountMinSketch(8, total_bytes=128 * 1024, seed=62)
    keys = STREAM.keys[:2000].tolist()

    def updates():
        for key in keys:
            sketch.update(key)

    benchmark(updates)


def test_count_min_batch_update(benchmark):
    sketch = CountMinSketch(8, total_bytes=128 * 1024, seed=63)
    keys = STREAM.keys[:20_000]
    benchmark(sketch.update_batch, keys)


def test_asketch_stream_ingest(benchmark):
    keys = STREAM.keys[:20_000]

    def ingest():
        asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=64)
        asketch.process_stream(keys)
        return asketch

    benchmark.pedantic(ingest, rounds=3, iterations=1)


def test_asketch_query_path(benchmark):
    asketch = ASketch(total_bytes=128 * 1024, filter_items=32, seed=65)
    asketch.process_stream(STREAM.keys)
    queries = STREAM.keys[:5000].tolist()

    def run_queries():
        for key in queries:
            asketch.query(key)

    benchmark(run_queries)


def test_exchange_heavy_path(benchmark):
    """Uniform keys on a tiny filter: the exchange-dominated worst case."""
    rng = np.random.default_rng(66)
    keys = rng.integers(0, 50_000, size=10_000, dtype=np.int64)

    def ingest():
        asketch = ASketch(total_bytes=32 * 1024, filter_items=8, seed=67)
        asketch.process_stream(keys)
        return asketch

    asketch = benchmark.pedantic(ingest, rounds=3, iterations=1)
    assert asketch.exchange_count > 0
