"""Micro-benchmarks of the individual hot paths (wall clock, Python).

These are the raw ingredients of every figure: filter probe, sketch
update, exchange, query.  Absolute numbers are Python-scaled; ratios
between them are what the reproduction relies on.

Set ``REPRO_BENCH_TINY=1`` to shrink the large batched-vs-scalar
comparison streams — the CI benchmark-smoke job uses this so every PR
gets a timing JSON artifact in minutes, not hours.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.filters import make_filter
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream
from repro.synopses.spec import SynopsisSpec, build_synopsis

STREAM = zipf_stream(40_000, 10_000, 1.5, seed=61)

#: All ASketch instances in this module are built from this one spec
#: (per-bench seeds and sizes override via ``with_params``).
ASKETCH_SPEC = SynopsisSpec(
    "asketch", {"total_bytes": 128 * 1024, "filter_items": 32}
)

#: Tiny mode for the CI benchmark-smoke job (see module docstring).
TINY = os.environ.get("REPRO_BENCH_TINY", "0") not in ("0", "")
#: The batched-vs-scalar comparison stream: 1M-item Zipf(1.5) by default.
SPEEDUP_ITEMS = 60_000 if TINY else 1_000_000
SPEEDUP_DOMAIN = 20_000 if TINY else 100_000


@pytest.mark.parametrize(
    "kind", ["vector", "strict-heap", "relaxed-heap", "stream-summary"]
)
def test_filter_hit_path(benchmark, kind):
    filter_ = make_filter(kind, 32)
    for key in range(32):
        filter_.insert(key, 1, 0)
    keys = [int(k) % 32 for k in STREAM.keys[:2000]]

    def hits():
        for key in keys:
            filter_.add_if_present(key, 1)

    benchmark(hits)


def test_count_min_point_update(benchmark):
    sketch = CountMinSketch(8, total_bytes=128 * 1024, seed=62)
    keys = STREAM.keys[:2000].tolist()

    def updates():
        for key in keys:
            sketch.update(key)

    benchmark(updates)


def test_count_min_batch_update(benchmark):
    sketch = CountMinSketch(8, total_bytes=128 * 1024, seed=63)
    keys = STREAM.keys[:20_000]
    benchmark(sketch.update_batch, keys)


def test_asketch_stream_ingest(benchmark):
    keys = STREAM.keys[:20_000]

    def ingest():
        asketch = build_synopsis(ASKETCH_SPEC.with_params(seed=64))
        asketch.process_stream(keys)
        return asketch

    benchmark.pedantic(ingest, rounds=3, iterations=1)


def test_asketch_batch_ingest(benchmark):
    """The vectorised chunk path over the same stream as the scalar
    ingest bench above — the ratio between the two is the batched-path
    win at this scale."""
    keys = STREAM.keys[:20_000]

    def ingest():
        asketch = build_synopsis(ASKETCH_SPEC.with_params(seed=64))
        asketch.process_batch(keys)
        return asketch

    benchmark.pedantic(ingest, rounds=3, iterations=1)


def test_asketch_batched_speedup():
    """Acceptance check: ``process_batch`` is at least 5x faster than the
    scalar ``process_stream`` on a 1M-item Zipf(1.5) stream (full size
    unless ``REPRO_BENCH_TINY`` shrinks it for the CI smoke job)."""
    stream = zipf_stream(SPEEDUP_ITEMS, SPEEDUP_DOMAIN, 1.5, seed=61)
    keys = stream.keys
    chunk_size = 100_000

    scalar = build_synopsis(ASKETCH_SPEC.with_params(seed=64))
    start = time.perf_counter()
    scalar.process_stream(keys)
    scalar_seconds = time.perf_counter() - start

    batched = build_synopsis(ASKETCH_SPEC.with_params(seed=64))
    start = time.perf_counter()
    for offset in range(0, keys.shape[0], chunk_size):
        batched.process_batch(keys[offset : offset + chunk_size])
    batched_seconds = time.perf_counter() - start

    assert batched.total_mass == scalar.total_mass == keys.shape[0]
    speedup = scalar_seconds / batched_seconds
    print(
        f"\nbatched ingest: scalar {scalar_seconds:.2f}s, "
        f"batched {batched_seconds:.3f}s, speedup {speedup:.1f}x "
        f"({keys.shape[0]} items)"
    )
    assert speedup >= 5.0


def test_asketch_query_path(benchmark):
    asketch = build_synopsis(ASKETCH_SPEC.with_params(seed=65))
    asketch.process_stream(STREAM.keys)
    queries = STREAM.keys[:5000].tolist()

    def run_queries():
        for key in queries:
            asketch.query(key)

    benchmark(run_queries)


def test_asketch_batch_query_path(benchmark):
    """Vectorised point queries (one bulk filter probe + one batched
    sketch read), matching the scalar query bench's workload."""
    asketch = build_synopsis(ASKETCH_SPEC.with_params(seed=65))
    asketch.process_batch(STREAM.keys)
    queries = STREAM.keys[:5000]
    benchmark(asketch.query_batch, queries)


def test_exchange_heavy_path(benchmark):
    """Uniform keys on a tiny filter: the exchange-dominated worst case."""
    rng = np.random.default_rng(66)
    keys = rng.integers(0, 50_000, size=10_000, dtype=np.int64)

    def ingest():
        asketch = build_synopsis(
            ASKETCH_SPEC.with_params(
                total_bytes=32 * 1024, filter_items=8, seed=67
            )
        )
        asketch.process_stream(keys)
        return asketch

    asketch = benchmark.pedantic(ingest, rounds=3, iterations=1)
    assert asketch.exchange_count > 0
