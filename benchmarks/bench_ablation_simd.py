"""Ablation: SIMD vs scalar filter probing (§6.1, Algorithm 3).

Wall-clock comparison of the three find-index kernels on a 32-id filter
array, plus the cost model's view of the same choice (one 16-id probe
block vs 32 scalar comparisons), plus the *batch* membership ablation:
the per-key python lane emulation vs the vectorised numpy kernel vs the
compiled (numba) kernel over a whole key batch — the three probe paths
a :meth:`Filter.add_many_if_present` call can take depending on the
active :mod:`repro.kernels` backend.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.hardware.costs import CostModel, OpCounters
from repro.kernels import available_backends, use_backend
from repro.simd.engine import (
    numpy_find_index,
    scalar_find_index,
    simd_find_index,
    simd_probe_blocks,
)

IDS = np.arange(1, 33, dtype=np.int32)
PROBES = [1, 16, 32, 99]  # first, middle, last, miss


@pytest.mark.parametrize(
    "kernel", [numpy_find_index, scalar_find_index, simd_find_index],
    ids=["numpy", "scalar", "simd-faithful"],
)
def test_probe_kernel(benchmark, kernel):
    def probe_all():
        return [kernel(IDS, probe) for probe in PROBES]

    results = benchmark(probe_all)
    assert results == [0, 15, 31, -1]


def test_modeled_simd_advantage():
    """The cost model prices a 32-id SIMD scan ~6x below a scalar scan,
    which is what makes the filter's t_f << t_s in §4."""
    model = CostModel()
    simd_ops = OpCounters(filter_probe_blocks=simd_probe_blocks(32))
    scalar_ops = OpCounters(scalar_comparisons=32)
    simd_cycles = model.cycles(simd_ops, 512)
    scalar_cycles = model.cycles(scalar_ops, 512)
    assert simd_cycles * 4 < scalar_cycles


def test_batch_probe_backends(persist_text):
    """The three bulk membership probe paths agree and are measured.

    A 32-slot filter id array (stored value = key + 1) is probed with a
    10K-key batch (hit-heavy, with a miss tail), through the per-key
    python lane emulation (``simd_find_index``), the vectorised numpy
    kernel, and — where numba is installed — the compiled kernel.  All
    paths must return identical slot answers; the measured rates persist
    to ``benchmarks/results/ablation_simd_batch.txt``.
    """
    rng = np.random.default_rng(7)
    capacity = 32
    monitored = rng.choice(np.arange(100, 4096), size=capacity, replace=False)
    ids = np.zeros(capacity, dtype=np.int64)
    ids[:] = monitored + 1
    batch = np.concatenate(
        [
            rng.choice(monitored, size=8_000),  # hits
            rng.integers(10_000, 20_000, size=2_000),  # misses
        ]
    ).astype(np.int64)
    rng.shuffle(batch)

    def lane_emulation() -> np.ndarray:
        ids32 = ids.astype(np.int32)
        return np.array(
            [simd_find_index(ids32, int(key) + 1) for key in batch.tolist()],
            dtype=np.int64,
        )

    def backend_probe(name: str):
        def run() -> np.ndarray:
            with use_backend(name) as backend:
                return backend.membership_probe(ids, batch)

        return run

    paths = {"python-lanes": lane_emulation, "numpy-kernel": backend_probe("numpy")}
    if "numba" in available_backends():
        paths["numba-kernel"] = backend_probe("numba")

    reference: np.ndarray | None = None
    lines = []
    for name, run in paths.items():
        result = run()  # warm (and compile, for numba)
        if reference is None:
            reference = result
        assert np.array_equal(result, reference), name
        start = time.perf_counter()
        repeats = 3
        for _ in range(repeats):
            run()
        elapsed = (time.perf_counter() - start) / repeats
        rate = batch.shape[0] / elapsed if elapsed > 0 else 0.0
        lines.append(f"{name:14s} {rate:>14,.0f} probes/s")
    if "numba-kernel" not in paths:
        lines.append("numba-kernel   SKIPPED (numba not installed)")
    persist_text("ablation_simd_batch", lines)
