"""Ablation: SIMD vs scalar filter probing (§6.1, Algorithm 3).

Wall-clock comparison of the three find-index kernels on a 32-id filter
array, plus the cost model's view of the same choice (one 16-id probe
block vs 32 scalar comparisons).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.costs import CostModel, OpCounters
from repro.simd.engine import (
    numpy_find_index,
    scalar_find_index,
    simd_find_index,
    simd_probe_blocks,
)

IDS = np.arange(1, 33, dtype=np.int32)
PROBES = [1, 16, 32, 99]  # first, middle, last, miss


@pytest.mark.parametrize(
    "kernel", [numpy_find_index, scalar_find_index, simd_find_index],
    ids=["numpy", "scalar", "simd-faithful"],
)
def test_probe_kernel(benchmark, kernel):
    def probe_all():
        return [kernel(IDS, probe) for probe in PROBES]

    results = benchmark(probe_all)
    assert results == [0, 15, 31, -1]


def test_modeled_simd_advantage():
    """The cost model prices a 32-id SIMD scan ~6x below a scalar scan,
    which is what makes the filter's t_f << t_s in §4."""
    model = CostModel()
    simd_ops = OpCounters(filter_probe_blocks=simd_probe_blocks(32))
    scalar_ops = OpCounters(scalar_comparisons=32)
    simd_cycles = model.cycles(simd_ops, 512)
    scalar_cycles = model.cycles(scalar_ops, 512)
    assert simd_cycles * 4 < scalar_cycles
