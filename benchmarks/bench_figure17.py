"""Figure 17 bench: predicted vs achieved filter selectivity."""

from __future__ import annotations

import pytest

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure17_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure17", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows:
        assert row["achieved N2/N"] == pytest.approx(
            row["predicted N2/N"], abs=0.12
        )
    # Both series decline monotonically with skew.
    predicted = result.column("predicted N2/N")
    assert predicted == sorted(predicted, reverse=True)
