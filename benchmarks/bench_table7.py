"""Table 7 bench: average error of the 10 worst-estimated items."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_table7_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("table7", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows:
        cms = row["Count-Min avg top-10 error"]
        asketch = row["ASketch avg top-10 error"]
        # Nearly equal at every skew (paper: 8013 vs 8088 etc.).
        assert asketch <= cms * 3 + 5
        assert cms <= asketch * 3 + 5
    # Both columns shrink (or stay at the zero floor) as skew grows.
    cms_series = result.column("Count-Min avg top-10 error")
    assert cms_series[-1] <= cms_series[0]
