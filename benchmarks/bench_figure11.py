"""Figure 11 bench: Space Saving vs ASketch on the Kosarak surrogate."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure11_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure11", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    rows = {row["method"]: row["observed error (%)"] for row in result.rows}
    # Both ASketch variants clearly below both Space Saving conventions
    # (the paper's "much lower error in comparison").
    assert rows["ASketch"] < rows["Space Saving(min)"] / 5
    assert rows["ASketch"] < rows["Space Saving"] / 5
    assert rows["ASketch-FCM"] < rows["Space Saving"] / 2
    # Zero convention beats min convention (the paper's reading).
    assert rows["Space Saving"] < rows["Space Saving(min)"]
