"""Ablation: hash-family sensitivity of Count-Min and ASketch.

The paper fixes Carter-Wegman-style pairwise-independent hashing; this
bench swaps in tabulation hashing (3-independent) and checks that
accuracy is insensitive to the family — evidence that the reproduction's
conclusions do not hinge on the hash choice — while wall-clocking the
two families' batch evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.hashing import make_hash_family
from repro.metrics.error import observed_error_percent
from repro.queries.workload import frequency_weighted_queries
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(60_000, 15_000, 1.3, seed=71)
QUERIES = frequency_weighted_queries(STREAM, 8_000, seed=72)
TRUTHS = [STREAM.exact.count_of(int(k)) for k in QUERIES]
KEYS = np.random.default_rng(73).integers(0, 2**31 - 1, size=100_000)


@pytest.mark.parametrize("family", ["carter-wegman", "tabulation"])
def test_family_batch_hash_speed(benchmark, family):
    hasher = make_hash_family(family, 4096, seed=74)
    benchmark(hasher.hash_array, KEYS)


@pytest.mark.parametrize("family", ["carter-wegman", "tabulation"])
def test_count_min_accuracy_by_family(benchmark, family):
    def ingest():
        sketch = CountMinSketch(
            8, total_bytes=32 * 1024, seed=75, hash_family=family
        )
        sketch.update_batch(STREAM.keys)
        return sketch

    sketch = benchmark.pedantic(ingest, rounds=1, iterations=1)
    error = observed_error_percent(sketch.estimate_batch(QUERIES), TRUTHS)
    # Accuracy is a property of independence, not the specific family:
    # both land in the same regime.
    assert error < 0.5
