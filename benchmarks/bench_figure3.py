"""Figure 3 bench: the closed-form filter-selectivity curves."""

from __future__ import annotations

from benchmarks.conftest import POINT_CONFIG
from repro.core.analysis import predicted_filter_selectivity
from repro.experiments import run_experiment


def test_figure3_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure3", POINT_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows:
        assert 0.0 <= row["|F|=128"] <= row["|F|=8"] <= 1.0
    # Monotone decline with skew for every filter size.
    for size in (8, 32, 64, 128):
        series = result.column(f"|F|={size}")
        assert series == sorted(series, reverse=True)


def test_selectivity_closed_form_speed(benchmark):
    """The closed form over the paper's full 8M-item domain."""
    benchmark(predicted_filter_selectivity, 1.5, 8_000_000, 32)
