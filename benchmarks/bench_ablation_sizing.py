"""Ablation: paying for the filter with row width vs hash count (§4).

The paper reduces ``h`` (keeping ``w`` fixed) to carve out filter space,
for two stated reasons: finer-grained sizing and an unchanged ``e^-w``
error probability.  This bench compares the two reduction strategies,
plus the conservative-update Count-Min variant as an accuracy reference.
"""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.metrics.error import observed_error_percent
from repro.queries.workload import frequency_weighted_queries
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(60_000, 15_000, 1.4, seed=41)
QUERIES = frequency_weighted_queries(STREAM, 8_000, seed=42)
TRUTHS = [STREAM.exact.count_of(int(k)) for k in QUERIES]
BUDGET = 64 * 1024
FILTER_ITEMS = 32
FILTER_BYTES = FILTER_ITEMS * 12


def build_reduce_h() -> ASketch:
    """The paper's choice: same w, narrower rows."""
    return ASketch(
        total_bytes=BUDGET, filter_items=FILTER_ITEMS, num_hashes=8, seed=43
    )


def build_reduce_w() -> ASketch:
    """The alternative: drop one hash row to pay for the filter."""
    sketch = CountMinSketch(
        num_hashes=7, total_bytes=BUDGET - FILTER_BYTES, seed=43
    )
    return ASketch(sketch=sketch, filter_items=FILTER_ITEMS)


def ingest(builder):
    asketch = builder()
    asketch.process_stream(STREAM.keys)
    return asketch


@pytest.mark.parametrize(
    "builder", [build_reduce_h, build_reduce_w],
    ids=["reduce-h", "reduce-w"],
)
def test_sizing_strategy(benchmark, builder):
    asketch = benchmark.pedantic(ingest, args=(builder,), rounds=1,
                                 iterations=1)
    error = observed_error_percent(asketch.query_batch(QUERIES), TRUTHS)
    # Both strategies must preserve the one-sided guarantee and stay in
    # the same accuracy regime; reduce-h keeps the error probability at
    # e^-8 which is what the paper optimises for.
    assert error < 1.0


def test_conservative_update_reference(benchmark):
    """Conservative Count-Min: the classical accuracy upgrade, for
    context on how much the filter buys relative to it."""

    def ingest_conservative():
        sketch = CountMinSketch(
            num_hashes=8, total_bytes=BUDGET, seed=43, conservative=True
        )
        for key in STREAM.keys.tolist():
            sketch.update(key)
        return sketch

    sketch = benchmark.pedantic(ingest_conservative, rounds=1, iterations=1)
    error = observed_error_percent(sketch.estimate_batch(QUERIES), TRUTHS)
    assert error < 1.0
