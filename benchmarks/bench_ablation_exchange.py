"""Ablation: the at-most-one-exchange rule (paper §5).

The paper argues cascading exchanges "are unnecessary and they introduce
additional errors".  This bench compares the default single-exchange
policy against a cascading variant (up to 8 exchanges per insertion) on
accuracy and exchange volume.
"""

from __future__ import annotations

import pytest

from repro.core.asketch import ASketch
from repro.metrics.error import observed_error_percent
from repro.queries.workload import frequency_weighted_queries
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(60_000, 15_000, 1.2, seed=31)
QUERIES = frequency_weighted_queries(STREAM, 8_000, seed=32)
TRUTHS = [STREAM.exact.count_of(int(k)) for k in QUERIES]


def run_policy(max_exchanges: int) -> ASketch:
    asketch = ASketch(
        total_bytes=64 * 1024,
        filter_items=32,
        max_exchanges_per_update=max_exchanges,
        seed=33,
    )
    asketch.process_stream(STREAM.keys)
    return asketch


@pytest.mark.parametrize("max_exchanges", [1, 8])
def test_exchange_policy(benchmark, max_exchanges):
    asketch = benchmark.pedantic(
        run_policy, args=(max_exchanges,), rounds=1, iterations=1
    )
    error = observed_error_percent(asketch.query_batch(QUERIES), TRUTHS)
    if max_exchanges == 1:
        test_exchange_policy.single = (asketch.exchange_count, error)
    else:
        single_exchanges, single_error = test_exchange_policy.single
        # Cascading does at least as many exchanges...
        assert asketch.exchange_count >= single_exchanges
        # ...and does not improve accuracy (the paper: it adds error).
        assert error >= single_error * 0.9
