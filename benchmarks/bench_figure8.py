"""Figure 8 bench: ASketch-FCM vs FCM observed error."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure8_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure8", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows:
        assert row["ASketch-FCM err (%)"] <= row["FCM err (%)"] + 1e-9
    # The gap opens with skew (paper: ~13x at 1.6).
    last = result.rows[-1]
    assert last["ASketch-FCM err (%)"] <= last["FCM err (%)"]
