"""Figure 13 bench: SPMD counting-kernel scaling."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure13_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure13", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    rows = {row["cores"]: row for row in result.rows}
    # Near-linear scaling to 32 cores for both kernels.
    assert rows[32]["ASketch items/ms"] > 25 * rows[1]["ASketch items/ms"]
    assert rows[32]["Count-Min items/ms"] > 25 * rows[1]["Count-Min items/ms"]
    # ASketch ~4x Count-Min at every core count (paper's reading).
    for row in result.rows:
        assert row["ASketch/CMS ratio"] > 2.0
    assert rows[32]["scaling efficiency"] > 0.8
