"""Figure 5 bench: update/query throughput vs skew for four methods."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure5_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure5", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    first, last = result.rows[0], result.rows[-1]
    # Count-Min flat; ASketch gains ~order of magnitude with skew.
    assert last["Count-Min upd/ms"] < 1.05 * first["Count-Min upd/ms"]
    assert last["ASketch upd/ms"] > 5 * first["ASketch upd/ms"]
    assert last["ASketch upd/ms"] > 5 * last["Count-Min upd/ms"]
    # Query side (5b): ASketch ~10x at high skew.
    assert last["ASketch qry/ms"] > 5 * last["Count-Min qry/ms"]
    # H-UDAF rises steeply at the high-skew end.
    assert last["Holistic UDAFs upd/ms"] > first["Holistic UDAFs upd/ms"]
