"""Adaptive filter re-tuning under heavy-hitter rotation (drift).

The scenario the static paper configuration cannot handle: a Zipf
stream whose heavy-hitter set rotates to a disjoint key range mid-run
(flash crowd / topic change).  A fixed small filter keeps monitoring
the old heavies and its hit-rate collapses; the
:class:`~repro.runtime.adaptive.AdaptiveController` watches the same
live signals the :mod:`repro.obs` registry exports and grows the filter
until the new head fits again.

``run_drift_benchmark`` is importable — ``record_trajectory.py`` embeds
its summary as the ``adaptive_drift`` section of the committed
trajectory document — and the pytest entry point persists the readable
table to ``benchmarks/results/adaptive_drift.txt`` while asserting the
acceptance bar: the adaptive run's post-rotation hit-rate recovers to
within 10% of its pre-drift hit-rate.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.asketch import ASketch
from repro.obs import install_registry, uninstall_registry
from repro.obs.trace import (
    RecordingTraceSink,
    install_tracer,
    uninstall_tracer,
)
from repro.runtime.adaptive import AdaptiveController
from repro.streams.zipf import zipf_stream

#: Disjoint key offset between phases — a total heavy-hitter rotation.
PHASE_OFFSET = 10_000_000


def _drift_stream(phases: int, per_phase: int, seed: int) -> np.ndarray:
    chunks = []
    for phase in range(phases):
        stream = zipf_stream(per_phase, 6_000, 1.4, seed=seed + phase)
        chunks.append(stream.keys + phase * PHASE_OFFSET)
    return np.concatenate(chunks)


def _hit_rate(synopsis, since: tuple[int, int]) -> float:
    """Hit-rate over everything ingested after the ``since`` snapshot."""
    items = synopsis.ops.items - since[0]
    misses = synopsis.miss_events - since[1]
    return 1.0 - misses / items if items else 1.0


def _snapshot(synopsis) -> tuple[int, int]:
    return (synopsis.ops.items, synopsis.miss_events)


def run_drift_benchmark(
    tiny: bool = True,
    *,
    phases: int = 3,
    total_bytes: int = 64 * 1024,
    filter_items: int = 8,
    chunk_size: int = 2_500,
    decide_every: int = 5_000,
    seed: int = 77,
) -> dict:
    """Fixed vs adaptive ASketch over a rotating-heavy-hitter stream.

    Hit-rates are measured over the *second half* of each phase, so the
    pre-drift number reflects a warmed filter and the post-drift number
    reflects whatever re-tuning happened inside the phase.  Returns a
    JSON-safe summary (per-phase hit-rates for both runs, resize trace
    events, and the recovery ratio the acceptance bar is on).
    """
    per_phase = 30_000 if tiny else 120_000
    keys = _drift_stream(phases, per_phase, seed)
    fixed = ASketch(
        total_bytes=total_bytes, filter_items=filter_items, seed=seed
    )
    adaptive = ASketch(
        total_bytes=total_bytes, filter_items=filter_items, seed=seed
    )
    controller = AdaptiveController(
        adaptive,
        target_hit_rate=0.7,
        min_window_items=1_000,
        cooldown_windows=0,
        max_filter_items=1_024,
    )

    sink = RecordingTraceSink()
    registry = install_registry()
    install_tracer(sink)
    fixed_rates, adaptive_rates = [], []
    try:
        position = 0
        for phase in range(phases):
            half = per_phase // 2
            start, mid = phase * per_phase, phase * per_phase + half
            for lo, hi, measure in ((start, mid, False), (mid, mid + half, True)):
                if measure:
                    fixed_since = _snapshot(fixed)
                    adaptive_since = _snapshot(adaptive)
                for offset in range(lo, hi, chunk_size):
                    chunk = keys[offset : offset + chunk_size]
                    fixed.process_batch(chunk)
                    adaptive.process_batch(chunk)
                    position += chunk.shape[0]
                    if position % decide_every == 0:
                        controller(position)
                if measure:
                    fixed_rates.append(_hit_rate(fixed, fixed_since))
                    adaptive_rates.append(_hit_rate(adaptive, adaptive_since))
        resizes = [
            event for event in sink.events if event.name == "filter_resize"
        ]
        gauge_items = registry.value("adaptive_filter_items")
    finally:
        uninstall_tracer()
        uninstall_registry()

    return {
        "phases": phases,
        "per_phase_items": per_phase,
        "filter_items_start": filter_items,
        "filter_items_final": adaptive.filter.capacity,
        "gauge_filter_items": gauge_items,
        "fixed_hit_rates": [round(rate, 4) for rate in fixed_rates],
        "adaptive_hit_rates": [round(rate, 4) for rate in adaptive_rates],
        "resize_events": len(resizes),
        "decisions": len(controller.decisions),
        "recovery_ratio": round(
            adaptive_rates[-1] / adaptive_rates[0], 4
        ),
    }


@pytest.fixture(scope="module")
def drift_summary():
    return run_drift_benchmark(tiny=True)


def test_adaptive_recovers_after_rotation(drift_summary, persist_text):
    summary = drift_summary
    lines = [
        "== adaptive_drift: hit-rate recovery after heavy-hitter rotation ==",
        f"phases: {summary['phases']} x {summary['per_phase_items']} items, "
        f"filter {summary['filter_items_start']} -> "
        f"{summary['filter_items_final']} items, "
        f"{summary['resize_events']} resizes",
        "phase  fixed-hit  adaptive-hit",
    ]
    for index, (fixed_rate, adaptive_rate) in enumerate(
        zip(summary["fixed_hit_rates"], summary["adaptive_hit_rates"])
    ):
        lines.append(f"{index:5d}  {fixed_rate:9.4f}  {adaptive_rate:12.4f}")
    lines.append(f"recovery ratio: {summary['recovery_ratio']}")
    persist_text("adaptive_drift", lines)

    # Acceptance bar: post-rotation hit-rate within 10% of pre-drift.
    assert summary["recovery_ratio"] >= 0.9
    # The controller demonstrably acted, and observability saw it.
    assert summary["resize_events"] >= 1
    assert summary["filter_items_final"] > summary["filter_items_start"]
    assert summary["gauge_filter_items"] == summary["filter_items_final"]


def test_adaptive_beats_fixed_after_rotation(drift_summary):
    """Post-rotation, the re-tuned filter out-hits the static one."""
    summary = drift_summary
    assert (
        summary["adaptive_hit_rates"][-1] > summary["fixed_hit_rates"][-1]
    )


def test_adaptation_preserves_one_sided_estimates():
    """Resizing mid-stream never breaks the over-estimate guarantee."""
    per_phase = 20_000
    keys = _drift_stream(2, per_phase, seed=91)
    adaptive = ASketch(total_bytes=64 * 1024, filter_items=8, seed=91)
    controller = AdaptiveController(
        adaptive, min_window_items=1_000, cooldown_windows=0
    )
    for offset in range(0, keys.shape[0], 5_000):
        adaptive.process_batch(keys[offset : offset + 5_000])
        controller(offset + 5_000)
    assert controller.resize_count >= 1
    uniques, counts = np.unique(keys, return_counts=True)
    estimates = adaptive.query_batch(uniques)
    assert all(
        estimate >= count
        for estimate, count in zip(estimates, counts.tolist())
    )
