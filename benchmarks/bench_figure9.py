"""Figure 9 bench: exchange counts vs skew."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure9_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure9", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    exchanges = result.column("exchanges")
    # Steep monotone-ish decline; tiny at high skew (paper: <100 at 3).
    assert exchanges[0] > 10 * max(exchanges[-1], 1)
    assert exchanges[-1] < 100
    # Exchanges are negligible relative to the stream size everywhere.
    stream_size = SWEEP_CONFIG.sweep_stream_size
    assert max(exchanges) < stream_size * 0.05
