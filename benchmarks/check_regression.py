"""CI perf-regression gate over the ``BENCH_core_ops`` trajectory.

Compares a freshly recorded trajectory document (see
``record_trajectory.py``) against a committed baseline and fails when
any shared bench's throughput dropped by more than the tolerance::

    python benchmarks/check_regression.py \
        --baseline BENCH_core_ops.tiny.json --current bench-current.json

Rules of engagement:

* Only bench ids present in **both** documents are compared — adding a
  bench never fails the gate, silently *dropping* one does, unless the
  baseline row is marked ``optional: true`` (environment-dependent
  benches like the numba leg, which legitimately vanish on runners
  without the dependency).
* Multi-worker benches (``workers > 1``) are skipped when the two
  documents were recorded on machines with different ``cpu_count``:
  a 2-worker number from a 4-cpu box and one from a 1-cpu box measure
  different things, and comparing them would make the gate flap with
  runner hardware.  They are also skipped when either run was
  oversubscribed — flagged explicitly via ``oversubscribed: true`` in
  the row, or inferred from ``workers > cpu_count`` for older
  documents — such a number is dominated by process-spawn overhead and
  swings wildly run to run.
* The tolerance is a fraction of baseline throughput (default 0.25:
  fail when current < 75% of baseline).  ``REPRO_PERF_GATE_TOLERANCE``
  overrides it without a workflow edit, for riding out a known-noisy
  runner generation.

Exit codes: 0 clean, 1 regression beyond tolerance, 2 usage/schema
error.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

SCHEMA = "repro-bench-trajectory/v1"
DEFAULT_TOLERANCE = 0.25


def _load(path: str) -> dict:
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise SystemExit(f"error: cannot read {path}: {exc}") from exc
    if document.get("schema") != SCHEMA:
        print(
            f"error: {path} has schema {document.get('schema')!r}, "
            f"expected {SCHEMA!r}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if not isinstance(document.get("benches"), dict):
        print(f"error: {path} has no 'benches' mapping", file=sys.stderr)
        raise SystemExit(2)
    return document


def _tolerance(cli_value: float | None) -> float:
    env = os.environ.get("REPRO_PERF_GATE_TOLERANCE", "")
    if env:
        try:
            return float(env)
        except ValueError:
            print(
                f"error: REPRO_PERF_GATE_TOLERANCE={env!r} is not a float",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    return DEFAULT_TOLERANCE if cli_value is None else cli_value


def compare(
    baseline: dict, current: dict, tolerance: float
) -> tuple[list[str], list[str]]:
    """Return (report lines, regression lines) for the two documents."""
    lines: list[str] = []
    regressions: list[str] = []
    base_benches = baseline["benches"]
    cur_benches = current["benches"]
    shared = sorted(set(base_benches) & set(cur_benches))
    if not shared:
        print("error: no bench ids in common", file=sys.stderr)
        raise SystemExit(2)

    for bench_id in shared:
        base = base_benches[bench_id]
        cur = cur_benches[bench_id]
        base_rate = float(base.get("items_per_s", 0.0))
        cur_rate = float(cur.get("items_per_s", 0.0))
        workers = int(cur.get("workers", base.get("workers", 1)))
        if workers > 1 and base.get("cpu_count") != cur.get("cpu_count"):
            lines.append(
                f"  {bench_id:20s} SKIP (cpu_count "
                f"{base.get('cpu_count')} -> {cur.get('cpu_count')}, "
                f"{workers} workers)"
            )
            continue
        oversubscribed = any(
            bool(doc.get("oversubscribed"))
            or (workers > 1 and workers > int(doc.get("cpu_count") or 0))
            for doc in (base, cur)
        )
        if oversubscribed:
            lines.append(
                f"  {bench_id:20s} SKIP ({workers} workers oversubscribed "
                f"on {cur.get('cpu_count')} cpus)"
            )
            continue
        if base_rate <= 0:
            lines.append(f"  {bench_id:20s} SKIP (no baseline rate)")
            continue
        ratio = cur_rate / base_rate
        verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
        lines.append(
            f"  {bench_id:20s} {base_rate:>12,.0f} -> {cur_rate:>12,.0f} "
            f"items/s  ({ratio:6.1%}) {verdict}"
        )
        if verdict == "REGRESSED":
            regressions.append(
                f"{bench_id}: {cur_rate:,.0f} items/s is "
                f"{1.0 - ratio:.1%} below baseline {base_rate:,.0f} "
                f"(tolerance {tolerance:.0%})"
            )

    dropped = sorted(set(base_benches) - set(cur_benches))
    for bench_id in dropped:
        if base_benches[bench_id].get("optional"):
            # Environment-dependent benches (e.g. the numba leg) vanish
            # legitimately when the current runner lacks the dependency.
            lines.append(
                f"  {bench_id:20s} SKIP (optional bench absent from "
                "current run)"
            )
            continue
        regressions.append(
            f"{bench_id}: present in baseline but missing from current run"
        )
        lines.append(f"  {bench_id:20s} MISSING from current run")
    return lines, regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True)
    parser.add_argument("--current", required=True)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help=(
            "max fractional throughput drop before failing "
            f"(default {DEFAULT_TOLERANCE}; REPRO_PERF_GATE_TOLERANCE "
            "overrides)"
        ),
    )
    args = parser.parse_args(argv)
    tolerance = _tolerance(args.tolerance)
    if not 0.0 < tolerance < 1.0:
        print(
            f"error: tolerance {tolerance} outside (0, 1)", file=sys.stderr
        )
        return 2

    baseline = _load(args.baseline)
    current = _load(args.current)
    print(
        f"perf gate: {args.current} vs {args.baseline} "
        f"(tolerance {tolerance:.0%})"
    )
    lines, regressions = compare(baseline, current, tolerance)
    print("\n".join(lines))
    if regressions:
        print("\nperf gate FAILED:", file=sys.stderr)
        for regression in regressions:
            print(f"  {regression}", file=sys.stderr)
        return 1
    print("perf gate clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
