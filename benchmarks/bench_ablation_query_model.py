"""Ablation: sensitivity to the query model (§7.1's sampling choice).

The paper's headline accuracy gaps use frequency-weighted queries
("queries are obtained by sampling the data items based on their
frequencies") — precisely the regime the filter serves.  This bench
re-runs the error comparison under uniform-over-domain queries, where
most probes hit the tail: ASketch's advantage must shrink (Theorem 1
says the tail behaves like a slightly-smaller Count-Min) while never
inverting materially — quantifying how much of the headline gap is the
query model.
"""

from __future__ import annotations

from repro.core.asketch import ASketch
from repro.metrics.error import observed_error_percent
from repro.queries.workload import (
    frequency_weighted_queries,
    uniform_domain_queries,
)
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(100_000, 25_000, 1.4, seed=171)
BUDGET = 64 * 1024

def build_both():
    count_min = CountMinSketch(8, total_bytes=BUDGET, seed=16)
    count_min.update_batch(STREAM.keys)
    asketch = ASketch(total_bytes=BUDGET, filter_items=32, seed=16)
    asketch.process_stream(STREAM.keys)
    return count_min, asketch

def error_ratio(count_min, asketch, queries) -> float:
    truths = [STREAM.exact.count_of(int(key)) for key in queries]
    cms = observed_error_percent(count_min.estimate_batch(queries), truths)
    ask = observed_error_percent(asketch.query_batch(queries), truths)
    return (cms + 1e-12) / (ask + 1e-12)

def test_query_model_sensitivity(benchmark):
    count_min, asketch = benchmark.pedantic(
        build_both, rounds=1, iterations=1
    )
    weighted = frequency_weighted_queries(STREAM, 15_000, seed=17)
    uniform = uniform_domain_queries(STREAM, 15_000, seed=18)
    weighted_ratio = error_ratio(count_min, asketch, weighted)
    uniform_ratio = error_ratio(count_min, asketch, uniform)
    # The filter's advantage is concentrated on the heavy items the
    # weighted workload actually asks about...
    assert weighted_ratio > uniform_ratio
    assert weighted_ratio > 1.5
    # ...while under uniform tail-dominated queries ASketch stays at
    # parity with Count-Min (Theorem 1's no-harm result).
    assert uniform_ratio > 0.8
