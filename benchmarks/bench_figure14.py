"""Figure 14 bench: filter-implementation throughput vs skew."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure14_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure14", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    mid = [row for row in result.rows if 0.75 <= row["skew"] <= 1.75]
    high = [row for row in result.rows if row["skew"] >= 2.5]
    # Relaxed beats Strict in the real-world band (less maintenance).
    assert sum(r["relaxed-heap items/ms"] for r in mid) > sum(
        r["strict-heap items/ms"] for r in mid
    )
    # Vector wins at high skew (paper: best above ~2).
    for row in high:
        assert row["vector items/ms"] >= 0.95 * row["relaxed-heap items/ms"]
    # Stream-Summary trails the heaps in the real-world band.
    assert sum(r["stream-summary items/ms"] for r in mid) < sum(
        r["relaxed-heap items/ms"] for r in mid
    )
