"""Table 4 bench: error-improvement factors at 64KB and 128KB."""

from __future__ import annotations

from benchmarks.conftest import POINT_CONFIG
from repro.experiments import run_experiment


def test_table4_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("table4", POINT_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    # At bench scale the absolute errors are tiny (rows where both
    # methods hit zero error report 1.0), so assert only the robust
    # part of the paper's shape: ASketch is never meaningfully worse,
    # and a clear >1x improvement appears somewhere in the sweep.
    for column in ("x improvement (64KB)", "x improvement (128KB)"):
        series = result.column(column)
        assert min(series) >= 0.25
        assert max(series) >= 1.3
