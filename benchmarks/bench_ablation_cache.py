"""Ablation: validate the cost model's static cache-residency assumption.

The cost model charges a 128KB sketch L2-level cell costs on the grounds
that the synopsis fits L2 but not L1 (the paper's §7.1 framing).  This
bench replays a real sketch access trace through the set-associative
cache simulator and checks that the measured hit ratios justify the
static constants — and that the ASketch *filter's* working set, in
contrast, is fully L1-resident, which is where `t_f << t_s` comes from.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.cache import (
    SetAssociativeCache,
    simulate_sketch_hit_ratios,
)
from repro.sketches.count_min import CountMinSketch
from repro.streams.zipf import zipf_stream

STREAM = zipf_stream(30_000, 8_000, 1.0, seed=141)
CACHES = {"L1": 32 * 1024, "L2": 256 * 1024}


def test_sketch_residency_assumption(benchmark):
    sketch = CountMinSketch(8, total_bytes=128 * 1024, seed=10)
    ratios = benchmark.pedantic(
        simulate_sketch_hit_ratios,
        args=(sketch, STREAM.keys[:4000], CACHES),
        rounds=1,
        iterations=1,
    )
    # L2-resident, not L1-resident: the static model's premise.
    assert ratios["L2"].hit_ratio > 0.75
    assert ratios["L1"].hit_ratio < ratios["L2"].hit_ratio


def test_filter_working_set_is_l1_resident(benchmark):
    """A 32-slot filter's id/count arrays span ~6 cache lines; its access
    trace hits L1 essentially always after the cold pass."""
    # 32 slots x 12 bytes within a 384-byte region, scanned per probe.
    filter_lines = np.arange(0, 384, 64)
    trace = np.tile(filter_lines, 2000)

    def simulate():
        cache = SetAssociativeCache(CACHES["L1"])
        cache.access_many(trace)
        return cache.stats

    stats = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert stats.hit_ratio > 0.99
