"""Record the repo's performance trajectory into ``BENCH_core_ops.json``.

Each invocation runs a fixed set of core-path benches (scalar ingest,
batched ingest, sharded ingest, 2-/4-worker multiprocess parallel
ingest, point queries) with the :mod:`repro.obs` registry installed,
then writes one JSON document mapping bench id to throughput and
chunk-latency quantiles, stamped with the git sha, a timestamp, and —
per entry — the ``workers`` / ``cpu_count`` context without which a
parallel throughput number is uninterpretable::

    python benchmarks/record_trajectory.py [--output BENCH_core_ops.json]

The committed ``BENCH_core_ops.json`` at the repo root is the
trajectory: re-running after a perf-relevant change and committing the
refreshed file records how throughput moved across PRs.  Latencies are
read from the ``engine_chunk_seconds`` histogram (p50/p99 via linear
interpolation inside the matching bucket), so the numbers reported here
are exactly what a Prometheus scrape of a production ingest would see.

Set ``REPRO_BENCH_TINY=1`` (or pass ``--tiny``) to shrink the streams
for the CI metrics-smoke job.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import time
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))
sys.path.insert(0, str(_REPO_ROOT))

from benchmarks.bench_adaptive_drift import run_drift_benchmark  # noqa: E402

from repro.kernels import (  # noqa: E402
    active_backend,
    available_backends,
    use_backend,
)
from repro.obs import install_registry, uninstall_registry  # noqa: E402
from repro.runtime.engine import StreamEngine  # noqa: E402
from repro.runtime.parallel import ParallelIngestRuntime  # noqa: E402
from repro.runtime.sharding import ShardedASketch  # noqa: E402
from repro.streams.zipf import zipf_stream  # noqa: E402
from repro.synopses.spec import SynopsisSpec, build_synopsis  # noqa: E402

SCHEMA = "repro-bench-trajectory/v1"

ASKETCH_SPEC = SynopsisSpec(
    "asketch", {"total_bytes": 128 * 1024, "filter_items": 32}
)


def _git_sha() -> str:
    """The current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=_REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except OSError:
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _cpu_count() -> int:
    """CPUs actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _stamp(row: dict, workers: int, optional: bool = False) -> dict:
    """Attach the context that makes a throughput number interpretable.

    A parallel items/s figure means nothing without knowing how many
    worker processes produced it and how many CPUs they had to share —
    the perf gate also keys off these to avoid comparing numbers taken
    on differently sized machines.  ``backend`` records which kernel
    compute backend (:mod:`repro.kernels`) produced the number;
    ``oversubscribed`` marks runs with more workers than CPUs, whose
    throughput is spawn-overhead-dominated and excluded from both the
    perf gate and any speedup claim.  ``optional`` marks benches that
    only run in some environments (e.g. the numba leg) so the gate
    treats their absence as a skip, not a drop.
    """
    row["workers"] = int(workers)
    row["cpu_count"] = _cpu_count()
    row["backend"] = active_backend().name
    row["oversubscribed"] = int(workers) > _cpu_count()
    if optional:
        row["optional"] = True
    return row


def _engine_summary(engine: StreamEngine, registry) -> dict:
    """One bench's record: throughput plus chunk-latency quantiles."""
    histogram = registry.get("engine_chunk_seconds")
    stats = engine.stats
    return {
        "items": stats.tuples_ingested,
        "chunks": stats.chunks_ingested,
        "items_per_s": round(
            1000.0 * stats.wall_throughput_items_per_ms, 2
        ),
        "p50_chunk_seconds": round(histogram.quantile(0.50), 6),
        "p99_chunk_seconds": round(histogram.quantile(0.99), 6),
    }


def _run_ingest_bench(synopsis, keys, chunk_size: int, batched: bool) -> dict:
    registry = install_registry()
    try:
        engine = StreamEngine(synopsis, batched=batched)
        for offset in range(0, keys.shape[0], chunk_size):
            engine.run([keys[offset : offset + chunk_size]])
        return _engine_summary(engine, registry)
    finally:
        uninstall_registry()


def _query_bench(keys, queries) -> dict:
    """Point-query throughput over a warm ASketch (no engine involved)."""
    asketch = build_synopsis(ASKETCH_SPEC.with_params(seed=65))
    asketch.process_batch(keys)
    start = time.perf_counter()
    asketch.query_batch(queries)
    elapsed = time.perf_counter() - start
    return {
        "items": int(queries.shape[0]),
        "chunks": 1,
        "items_per_s": round(queries.shape[0] / elapsed, 2)
        if elapsed > 0
        else 0.0,
        "p50_chunk_seconds": round(elapsed, 6),
        "p99_chunk_seconds": round(elapsed, 6),
    }


def _parallel_bench(keys, chunk_size: int, workers: int) -> dict:
    """Multiprocess SPMD ingest through the shared-memory runtime.

    Same 4-shard layout and seed as ``sharded_ingest``, so the pair
    reads as "one process vs N processes over the identical synopsis";
    ``wall_seconds`` covers spawn + feed + ingest + drain merge (the
    honest end-to-end number a deployment would see).
    """
    runtime = ParallelIngestRuntime(
        workers,
        shards=4,
        total_bytes=32 * 1024,
        seed=64,
        slot_capacity=max(1 << 16, chunk_size),
    )
    chunks = [
        keys[offset : offset + chunk_size]
        for offset in range(0, keys.shape[0], chunk_size)
    ]
    stats = runtime.run(iter(chunks))
    mean_chunk = (
        stats.wall_seconds / stats.chunks_ingested
        if stats.chunks_ingested
        else 0.0
    )
    return {
        "items": stats.tuples_ingested,
        "chunks": stats.chunks_ingested,
        "items_per_s": round(
            1000.0 * stats.wall_throughput_items_per_ms, 2
        ),
        "p50_chunk_seconds": round(mean_chunk, 6),
        "p99_chunk_seconds": round(mean_chunk, 6),
    }


#: The back stages the accuracy-vs-space section compares, at equal
#: shipped bytes (SF's fat helper is working memory, not shipped state).
_ACCURACY_METHODS = ("count-min", "asketch", "sf-sketch", "salsa-cm")


def _accuracy_spec(method: str, total_bytes: int) -> SynopsisSpec:
    if method == "asketch":
        return SynopsisSpec(
            "asketch",
            {"total_bytes": total_bytes, "filter_items": 32, "seed": 67},
        )
    return SynopsisSpec(
        method, {"num_hashes": 8, "total_bytes": total_bytes, "seed": 67}
    )


def _accuracy_vs_space(tiny: bool) -> dict:
    """Mean one-sided over-error per method at equal synopsis bytes.

    The staged-synopsis comparison the back-stage registry exists for:
    ASketch, SF-sketch and SALSA against the plain Count-Min baseline,
    every method answering from the same byte budget.  Lower is better;
    all four are one-sided, so the error is ``estimate - true >= 0``.
    """
    import numpy as np

    items = 60_000 if tiny else 200_000
    domain = items // 4
    stream = zipf_stream(items, domain, 1.3, seed=67)
    uniq, counts = np.unique(stream.keys, return_counts=True)
    budgets = (16 * 1024,) if tiny else (16 * 1024, 64 * 1024)
    section: dict = {
        "items": items,
        "domain": domain,
        "skew": 1.3,
        "budgets": {},
    }
    for total_bytes in budgets:
        row = {}
        for method in _ACCURACY_METHODS:
            synopsis = build_synopsis(_accuracy_spec(method, total_bytes))
            if hasattr(synopsis, "process_batch"):
                synopsis.process_batch(stream.keys)
            else:
                synopsis.process_stream(stream.keys)
            estimates = np.asarray(
                synopsis.estimate_batch(uniq), dtype=np.int64
            )
            over = estimates - counts
            row[method] = {
                "bytes": int(synopsis.size_bytes),
                "mean_over_error": round(float(over.mean()), 4),
                "p99_over_error": round(float(np.quantile(over, 0.99)), 2),
                "one_sided_violations": int((over < 0).sum()),
            }
        section["budgets"][str(total_bytes)] = row
    return section


def record(tiny: bool) -> dict:
    """Run every bench and return the trajectory document."""
    items = 60_000 if tiny else 400_000
    domain = 20_000 if tiny else 100_000
    chunk_size = 10_000
    stream = zipf_stream(items, domain, 1.5, seed=61)
    keys = stream.keys

    benches = {
        "scalar_ingest": _stamp(
            _run_ingest_bench(
                build_synopsis(ASKETCH_SPEC.with_params(seed=64)),
                keys,
                chunk_size,
                batched=False,
            ),
            workers=1,
        ),
        "batched_ingest": _stamp(
            _run_ingest_bench(
                build_synopsis(ASKETCH_SPEC.with_params(seed=64)),
                keys,
                chunk_size,
                batched=True,
            ),
            workers=1,
        ),
        "sharded_ingest": _stamp(
            _run_ingest_bench(
                ShardedASketch(shards=4, total_bytes=32 * 1024, seed=64),
                keys,
                chunk_size,
                batched=True,
            ),
            workers=1,
        ),
        "parallel_ingest_2w": _stamp(
            _parallel_bench(keys, chunk_size, workers=2), workers=2
        ),
        "parallel_ingest_4w": _stamp(
            _parallel_bench(keys, chunk_size, workers=4), workers=4
        ),
        "batch_query": _stamp(
            _query_bench(keys, keys[:20_000]), workers=1
        ),
    }
    if "numba" in available_backends():
        # The compiled leg, recorded only where numba exists (CI's
        # with-numba job, developer machines with `pip install .[native]`).
        # Marked optional so a no-numba run's gate treats its absence as
        # a skip rather than a dropped bench.
        with use_backend("numba"):
            benches["batched_ingest_native"] = _stamp(
                _run_ingest_bench(
                    build_synopsis(ASKETCH_SPEC.with_params(seed=64)),
                    keys,
                    chunk_size,
                    batched=True,
                ),
                workers=1,
                optional=True,
            )
    return {
        "schema": SCHEMA,
        "git_sha": _git_sha(),
        "generated_unix": time.time(),
        "tiny": tiny,
        "cpu_count": _cpu_count(),
        "benches": benches,
        # Quality sections (not throughput): the perf gate only compares
        # "benches", so these record accuracy/adaptivity trajectories
        # without tripping throughput regression checks.
        "accuracy_vs_space": _accuracy_vs_space(tiny),
        "adaptive_drift": run_drift_benchmark(tiny),
    }


def main(argv: list[str] | None = None) -> int:
    """Entry point; writes the trajectory JSON and prints a summary."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        default=str(_REPO_ROOT / "BENCH_core_ops.json"),
        help="output JSON path (default: repo-root BENCH_core_ops.json)",
    )
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="shrink streams (CI smoke mode; REPRO_BENCH_TINY=1 also works)",
    )
    args = parser.parse_args(argv)
    tiny = args.tiny or os.environ.get("REPRO_BENCH_TINY", "0") not in (
        "0",
        "",
    )
    document = record(tiny)
    path = Path(args.output)
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    for bench_id, row in sorted(document["benches"].items()):
        print(
            f"{bench_id:22s} {row['items_per_s']:>12.0f} items/s  "
            f"p50 {row['p50_chunk_seconds'] * 1000:.2f} ms  "
            f"p99 {row['p99_chunk_seconds'] * 1000:.2f} ms  "
            f"[{row['backend']}]"
        )
    print(f"trajectory written to {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
