"""Table 3 bench: misclassification counts vs Count-Min synopsis size."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_table3_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("table3", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows:
        # ASketch never misclassifies (the paper's headline of Table 3).
        assert row["max misclassifications (ASketch)"] == 0
    # The smallest synopsis shows the most Count-Min misclassification.
    smallest = result.rows[0]["max misclassifications (Count-Min)"]
    largest = result.rows[-1]["max misclassifications (Count-Min)"]
    assert smallest >= largest
