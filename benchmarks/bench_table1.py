"""Table 1 bench: the headline four-method comparison at Zipf 1.5.

Times the end-to-end regeneration and the per-method update hot paths;
writes the reproduced rows to ``results/table1.txt``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import POINT_CONFIG
from repro.experiments import run_experiment
from repro.experiments.common import build_method, full_stream


def test_table1_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("table1", POINT_CONFIG), rounds=1, iterations=1
    )
    persist(result)
    rows = {row["method"]: row for row in result.rows}
    # The paper's ordering must hold at bench scale.
    assert (
        rows["ASketch"]["updates/ms (modeled)"]
        > rows["Holistic UDAFs"]["updates/ms (modeled)"]
        > rows["Count-Min"]["updates/ms (modeled)"]
    )
    assert rows["ASketch"]["observed error (%)"] == min(
        row["observed error (%)"] for row in result.rows
    )


@pytest.mark.parametrize(
    "method", ["count-min", "fcm", "holistic-udaf", "asketch"]
)
def test_update_hot_path(benchmark, method):
    """Wall-clock Python update throughput per method (shape-only)."""
    stream = full_stream(POINT_CONFIG, 1.5)
    keys = stream.keys[:20_000]

    def ingest():
        synopsis = build_method(method, POINT_CONFIG)
        synopsis.process_stream(keys)
        return synopsis

    benchmark.pedantic(ingest, rounds=3, iterations=1)
