"""Real multiprocess ingest vs the paper's parallel cost models.

Figures 12 and 13 of the paper are *predictions*: the pipeline
simulator prices a measured operation split onto two cores, and the
SPMD model scales a single-kernel mix across contended cores.  This
bench runs the actual :class:`~repro.runtime.parallel.
ParallelIngestRuntime` — spawned worker processes over shared-memory
chunk rings — on the same 1M-item Zipf(1.5) workload and reports the
*real* speedup next to both model predictions, so the gap between
"what the cost model promises" and "what the shared-memory runtime
delivers" is a recorded number, not folklore.

Two invariants are asserted unconditionally:

* the merged parallel result is **bit-identical** to the sequential
  sharded ingest (the whole point of the deterministic routing +
  pristine-merge design);
* the cost models still predict the paper's shapes (near-linear SPMD
  scaling, pipeline speedup > 1 at skew 1.5).

The real-speedup floor (4 workers >= 2.5x single-process batched) is
asserted only when the machine actually has >= 4 usable cores —
on a 1-2 core CI shard the number is still *recorded* but a spawn-bound
slowdown is not a failure of the runtime.

Set ``REPRO_BENCH_TINY=1`` to shrink the stream for smoke runs.
"""

from __future__ import annotations

import os

import pytest

from repro.hardware.pipeline import PipelineSimulator
from repro.hardware.spmd import SpmdModel
from repro.runtime.engine import StreamEngine
from repro.runtime.parallel import ParallelIngestRuntime
from repro.runtime.sharding import ShardedASketch
from repro.streams.zipf import zipf_stream
from repro.synopses.spec import SynopsisSpec, build_synopsis

TINY = os.environ.get("REPRO_BENCH_TINY", "0") not in ("0", "")
ITEMS = 60_000 if TINY else 1_000_000
DOMAIN = 20_000 if TINY else 100_000
CHUNK_SIZE = 10_000
SHARDS = 4
SHARD_PARAMS = {"shards": SHARDS, "total_bytes": 32 * 1024, "seed": 64}

STREAM = zipf_stream(ITEMS, DOMAIN, 1.5, seed=61)

ASKETCH_SPEC = SynopsisSpec(
    "asketch", {"total_bytes": 128 * 1024, "filter_items": 32}
)


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _chunks():
    keys = STREAM.keys
    return [
        keys[offset : offset + CHUNK_SIZE]
        for offset in range(0, keys.shape[0], CHUNK_SIZE)
    ]


def _sequential_ingest() -> tuple[ShardedASketch, float]:
    """Single-process batched sharded ingest; returns (group, items/s)."""
    group = ShardedASketch(**SHARD_PARAMS)
    engine = StreamEngine(group, batched=True)
    engine.run(_chunks())
    return group, 1000.0 * engine.stats.wall_throughput_items_per_ms


def _parallel_ingest(workers: int):
    """Multiprocess ingest; returns (merged group, items/s)."""
    runtime = ParallelIngestRuntime(
        workers,
        slot_capacity=max(1 << 16, CHUNK_SIZE),
        **SHARD_PARAMS,
    )
    stats = runtime.run(iter(_chunks()))
    return (
        runtime.supervisor.group,
        1000.0 * stats.wall_throughput_items_per_ms,
    )


def _measured_single_kernel():
    """One ASketch over the full stream — the cost models' input."""
    asketch = build_synopsis(ASKETCH_SPEC.with_params(seed=64))
    asketch.process_stream(STREAM.keys[: min(ITEMS, 100_000)])
    return asketch


def test_parallel_matches_sequential_bit_identically(benchmark, persist_text):
    """4-worker SPMD ingest == sequential sharded ingest, bit for bit."""
    sequential, seq_rate = _sequential_ingest()
    merged, par_rate = benchmark.pedantic(
        _parallel_ingest, args=(4,), rounds=1, iterations=1
    )

    assert merged.state().equals(sequential.state())
    speedup = par_rate / seq_rate if seq_rate else 0.0
    persist_text(
        "parallel_ingest_4w",
        [
            f"sequential batched: {seq_rate:,.0f} items/s",
            f"4-worker parallel:  {par_rate:,.0f} items/s",
            f"real speedup: {speedup:.2f}x on {_cpu_count()} cpus",
        ],
    )
    if _cpu_count() >= 4 and not TINY:
        # The acceptance floor from the paper's multicore story: with
        # real cores to spread over, process parallelism must pay.
        assert speedup >= 2.5, (
            f"4-worker speedup {speedup:.2f}x < 2.5x on "
            f"{_cpu_count()} cpus"
        )


@pytest.mark.parametrize("workers", [2, 4])
def test_real_speedup_vs_spmd_model(workers, persist_text):
    """Record real N-worker speedup next to the Figure 13 SPMD model."""
    _, seq_rate = _sequential_ingest()
    _, par_rate = _parallel_ingest(workers)
    real_speedup = par_rate / seq_rate if seq_rate else 0.0

    kernel = _measured_single_kernel()
    model = SpmdModel()
    ops = kernel.combined_ops()
    single = model.run(ops, kernel.size_bytes, 1)
    scaled = model.run(ops, kernel.size_bytes, workers)
    model_speedup = (
        scaled.aggregate_items_per_ms / single.aggregate_items_per_ms
    )

    # The model itself must keep the paper's near-linear shape.
    assert model_speedup > 0.8 * workers
    assert scaled.efficiency > 0.8

    persist_text(
        f"spmd_vs_real_{workers}w",
        [
            f"SPMD model speedup ({workers} cores): {model_speedup:.2f}x",
            f"real runtime speedup ({workers} workers): "
            f"{real_speedup:.2f}x on {_cpu_count()} cpus",
            f"model efficiency: {scaled.efficiency:.3f}",
        ],
    )
    if _cpu_count() >= workers and not TINY:
        # Real speedup may trail the model (spawn + ring overhead) but
        # must capture at least half of the predicted scaling.
        assert real_speedup >= 0.5 * model_speedup


def test_pipeline_model_figure12_point(persist_text):
    """The Figure 12 two-core pipeline prediction at skew 1.5.

    The shared-memory runtime is SPMD (one full ASketch per worker's
    shards), not the paper's two-stage pipeline, so this is recorded as
    the *other* parallel roofline: what a filter-core/sketch-core split
    would buy on the same stream.
    """
    kernel = _measured_single_kernel()
    stage0, stage1 = kernel.stage_ops()
    n_items = int(min(ITEMS, 100_000))
    stage0.items = n_items
    result = PipelineSimulator().run(
        stage0,
        stage1,
        n_items=n_items,
        forwarded_items=kernel.miss_events,
        returned_items=kernel.ops.exchanges,
        sketch_bytes=kernel.sketch.size_bytes,
        filter_bytes=kernel.filter.size_bytes,
    )
    assert result.speedup > 1.0
    persist_text(
        "pipeline_model_skew15",
        [
            f"sequential: {result.sequential_items_per_ms:,.0f} items/ms",
            f"2-core pipeline: {result.throughput_items_per_ms:,.0f} "
            "items/ms",
            f"pipeline speedup: {result.speedup:.2f}x "
            f"(bottleneck: {result.bottleneck})",
        ],
    )
