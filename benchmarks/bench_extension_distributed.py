"""Extension bench: distributed deployments (merge, kernel group, window).

Wall-clocks the production-feature extensions: synopsis merging (the
combined-synopsis SPMD variant), the query-merged kernel group (§6.3
semantics), and the sliding-window wrapper built on Appendix-A
deletions.
"""

from __future__ import annotations

from repro.core.asketch import ASketch
from repro.core.kernel_group import KernelGroup
from repro.core.window import SlidingWindowASketch
from repro.streams.zipf import zipf_stream

STREAMS = [
    zipf_stream(20_000, 5_000, 1.5, seed=111 + index) for index in range(4)
]

def test_asketch_merge(benchmark):
    def build_and_merge():
        parts = []
        for index, stream in enumerate(STREAMS):
            asketch = ASketch(total_bytes=64 * 1024, filter_items=32, seed=9)
            asketch.process_stream(stream.keys)
            parts.append(asketch)
        merged = parts[0]
        for part in parts[1:]:
            merged.merge(part)
        return merged

    merged = benchmark.pedantic(build_and_merge, rounds=1, iterations=1)
    assert merged.total_mass == sum(len(s) for s in STREAMS)

def test_kernel_group_query(benchmark):
    group = KernelGroup(4, total_bytes=64 * 1024, seed=10)
    for index, stream in enumerate(STREAMS):
        group.process_stream_on(index, stream.keys)
    probe = STREAMS[0].keys[:500]

    benchmark(group.query_batch, probe)

def test_sliding_window_ingest(benchmark):
    keys = STREAMS[0].keys

    def ingest():
        window = SlidingWindowASketch(
            5_000, total_bytes=64 * 1024, filter_items=32, seed=11
        )
        window.process_stream(keys)
        return window

    window = benchmark.pedantic(ingest, rounds=1, iterations=1)
    assert len(window) == 5_000
