"""Shared benchmark configuration and result persistence.

Every ``bench_<artefact>.py`` file times the regeneration of one of the
paper's tables or figures (plus targeted micro-benchmarks of the hot
paths involved) and writes the reproduced rows to
``benchmarks/results/<artefact>.txt`` so the numbers survive the run.
The scale is deliberately small — the full-size reproduction is driven
through ``repro-asketch run <id>`` — but every shape assertion from the
paper is still checked here.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentConfig, format_result
from repro.experiments.result import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Small scale for sweep benches (13 skew points x several methods).
SWEEP_CONFIG = ExperimentConfig(scale=0.05, runs=2, seed=0)
#: Slightly larger scale for single-point benches.
POINT_CONFIG = ExperimentConfig(scale=0.15, runs=2, seed=0)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def persist(results_dir):
    """Write an ExperimentResult to benchmarks/results/<id>.txt."""

    def _write(result: ExperimentResult) -> ExperimentResult:
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(format_result(result) + "\n", encoding="utf-8")
        return result

    return _write


@pytest.fixture()
def persist_text(results_dir):
    """Write free-form bench lines to benchmarks/results/<id>.txt.

    For benches whose output is a handful of measured numbers (e.g. the
    real-vs-model parallel speedups) rather than a full experiment
    table.
    """

    def _write(bench_id: str, lines: list[str]) -> None:
        path = results_dir / f"{bench_id}.txt"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    return _write
