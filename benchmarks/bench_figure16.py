"""Figure 16 bench: tail (low-frequency) relative error, CMS vs ASketch."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure16_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure16", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows:
        # The curves are indistinguishable (Theorem 1's point): neither
        # side is ever worse than a small factor of the other.
        assert row["ASketch ARE"] <= row["Count-Min ARE"] * 3 + 1e-6
        assert row["Count-Min ARE"] <= row["ASketch ARE"] * 3 + 1e-6
