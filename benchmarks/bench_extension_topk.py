"""Extension bench: three ways to answer top-k at equal space.

The paper's related work positions ASketch's filter-based top-k against
(a) counter-based summaries (Space Saving) and (b) sketches augmented
with a hierarchical structure [8].  This bench runs all three at the
same byte budget on a Zipf 1.5 stream and compares update cost, top-k
precision, and heavy-hitter point accuracy.
"""

from __future__ import annotations

import pytest

from repro.metrics.precision import precision_at_k
from repro.streams.zipf import zipf_stream
from repro.synopses.spec import SynopsisSpec, build_synopsis

STREAM = zipf_stream(60_000, 16_384, 1.5, seed=101)
BUDGET = 128 * 1024
K = 20

ASKETCH_SPEC = SynopsisSpec(
    "asketch", {"total_bytes": BUDGET, "filter_items": 32, "seed": 1}
)
HIERARCHY_SPEC = SynopsisSpec(
    "hierarchical-count-min",
    {"domain_bits": 14, "total_bytes": BUDGET, "num_hashes": 4, "seed": 1},
)
SPACE_SAVING_SPEC = SynopsisSpec("space-saving", {"total_bytes": BUDGET})


def build_asketch():
    asketch = build_synopsis(ASKETCH_SPEC)
    asketch.process_stream(STREAM.keys)
    return asketch


def build_hierarchy():
    hierarchy = build_synopsis(HIERARCHY_SPEC)
    hierarchy.process_stream(STREAM.keys)
    return hierarchy


def build_space_saving():
    summary = build_synopsis(SPACE_SAVING_SPEC)
    summary.process_stream(STREAM.keys)
    return summary


@pytest.mark.parametrize(
    "builder", [build_asketch, build_hierarchy, build_space_saving],
    ids=["asketch", "hierarchical-cms", "space-saving"],
)
def test_topk_approach(benchmark, builder):
    synopsis = benchmark.pedantic(builder, rounds=1, iterations=1)
    truth = STREAM.true_top_k(K)
    precision = precision_at_k(synopsis.top_k(K), truth, k=K)
    # Every approach must find the clear heavy hitters on this skew.
    assert precision >= 0.8
    # Point accuracy on the heavies: one-sided for all three here.
    for key, count in truth[:5]:
        assert synopsis.estimate(key) >= count


def test_asketch_most_accurate_on_heavies(benchmark):
    def run_all():
        return build_asketch(), build_hierarchy(), build_space_saving()

    asketch, hierarchy, space_saving = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    top = STREAM.true_top_k(K)
    asketch_error = sum(asketch.query(k) - c for k, c in top)
    hierarchy_error = sum(hierarchy.estimate(k) - c for k, c in top)
    assert asketch_error <= hierarchy_error
    del space_saving  # its counts are also near-exact at this capacity
