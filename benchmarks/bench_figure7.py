"""Figure 7 bench: observed error vs skew (ASketch, CMS, H-UDAF)."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure7_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure7", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows[2:]:  # skew >= 1.2: the gap must be open
        assert row["ASketch err (%)"] <= row["Count-Min err (%)"]
    # H-UDAF tracks Count-Min within a small factor at every skew.
    for row in result.rows:
        cms = row["Count-Min err (%)"]
        hudaf = row["Holistic UDAFs err (%)"]
        assert hudaf <= cms * 10 + 1e-9
        assert cms <= hudaf * 10 + 1e-9
