"""Figure 6 bench: relative error carried by misclassified items."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure6_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure6", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for row in result.rows:
        if row["misclassified items"] > 0:
            # On the items Count-Min misclassifies, ASketch's error is
            # clearly lower (paper: up to 3 orders of magnitude at full
            # scale; the gap narrows at reduced scale).
            assert (
                row["avg rel. error (ASketch)"]
                < row["avg rel. error (Count-Min)"]
            )
