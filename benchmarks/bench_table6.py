"""Table 6 bench: filter-implementation accuracy at equal byte budget."""

from __future__ import annotations

from benchmarks.conftest import POINT_CONFIG
from repro.experiments import run_experiment


def test_table6_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("table6", POINT_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    rows = {row["filter type"]: row for row in result.rows}
    # The three array filters monitor 32 items; Stream-Summary only 4.
    for kind in ("vector", "relaxed-heap", "strict-heap"):
        assert rows[kind]["items monitored"] == 32
    assert rows["stream-summary"]["items monitored"] == 4
    # And therefore Stream-Summary is the least accurate (paper's 0.0005
    # vs 0.0002 reading).
    array_errors = [
        rows[kind]["observed error (%)"]
        for kind in ("vector", "relaxed-heap", "strict-heap")
    ]
    assert rows["stream-summary"]["observed error (%)"] >= max(array_errors)
