"""Figure 10 bench: real-data surrogate throughput and error."""

from __future__ import annotations

from benchmarks.conftest import SWEEP_CONFIG
from repro.experiments import run_experiment


def test_figure10_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("figure10", SWEEP_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    for dataset in ("ip-trace", "kosarak"):
        rows = {
            row["method"]: row
            for row in result.rows
            if row["dataset"] == dataset
        }
        # ASketch at or above Count-Min throughput at these mild skews.
        assert (
            rows["ASketch"]["updates/ms (modeled)"]
            >= 0.95 * rows["Count-Min"]["updates/ms (modeled)"]
        )
        # ASketch-FCM is the most accurate method (paper's reading).
        best_error = min(row["observed error (%)"] for row in rows.values())
        assert rows["ASketch-FCM"]["observed error (%)"] <= best_error * 3
        # ASketch at or below Count-Min error.
        assert (
            rows["ASketch"]["observed error (%)"]
            <= rows["Count-Min"]["observed error (%)"] + 1e-9
        )
