"""Table 5 bench: precision-at-k of the ASketch top-k query."""

from __future__ import annotations

from benchmarks.conftest import POINT_CONFIG
from repro.experiments import run_experiment


def test_table5_rows(benchmark, persist):
    result = benchmark.pedantic(
        run_experiment, args=("table5", POINT_CONFIG), rounds=1,
        iterations=1,
    )
    persist(result)
    # Paper: precision 1.0 from skew 1.0 upward, high even below.
    assert result.row_for("skew", 1.5)["precision-at-k"] >= 0.9
    assert result.row_for("skew", 2.0)["precision-at-k"] >= 0.95
    assert result.row_for("skew", 0.6)["precision-at-k"] >= 0.5
